(* The closure-threaded execution engine.

   [exec] pre-lowers the program once into a flat array of closures, one
   per pc: [steps.(p) : unit -> int] executes the instruction(s) at [p]
   against the shared {!Vmstate.state} and returns the next pc. The hot
   loop is then just

     while true do pc := steps.(pc) () done

   with zero per-step decoding:

   - the instruction constructor is dispatched once, at lowering time —
     no per-step [match];
   - hook-vs-nohook and trace-locals-vs-not are baked into the closure
     variant, so the loop never tests [hooked];
   - per-pc immediates and metadata (constants, slot offsets, branch
     target/kind/cid, callee [func_info] fields) are captured in the
     closure environment instead of re-read from the instruction;
   - the [Hooks.t] record is resolved into its fields once, so firing an
     event is a single known-closure call, not a record load per event;
   - a peephole pass fuses the dominant straight-line sequences of the
     workloads into superinstructions (see [match_at]).

   Superinstruction fusion preserves the hook-event stream and the
   instruction-count clock exactly: a fused step fires each constituent's
   [on_instr]/[on_read]/[on_write]/[on_branch] with the original pcs and
   bumps [instructions] by the number of constituents, so profile
   timestamps (the paper's Tdur/Tdep unit) are bit-identical to the
   switch engine's. Fusion only ever replaces the closure at the *head*
   pc; interior pcs keep their single-instruction closures, so a branch
   into the middle of a fused window executes exactly the unfused tail.

   Near fuel exhaustion (fewer than [k] steps of budget left) a fused
   closure falls back to its head's single-instruction closure, which
   re-enters the loop one instruction at a time and traps "out of fuel"
   at exactly the same pc as the reference engine. *)

open Vmstate

type fusion = { head : int; length : int; name : string }

(* Resolved superinstruction descriptors, longest-match-first. The set
   was chosen from dynamic pair/triple/quad frequencies over the eight
   registry workloads (see DESIGN.md "Execution engines"): loop
   conditions (LoadLocal;Const;Binop;Br), scalar updates
   (LoadLocal;Const;Binop;StoreLocal[;Jmp]), constant-operand arithmetic
   (Const;Binop), comparison branches (Binop;Br), and the array-access
   idioms around LoadIndex. *)
type pat =
  | P_inc_jmp of int * int * Minic.Ast.binop * int * int
      (* LoadLocal s; Const k; Binop op; StoreLocal d; Jmp t *)
  | P_llcb_store of int * int * Minic.Ast.binop * int
      (* LoadLocal s; Const k; Binop op; StoreLocal d *)
  | P_llcb_br of int * int * Minic.Ast.binop * Instr.branch_kind * int * int
      (* LoadLocal s; Const k; Binop op; Br {kind; cid; target} *)
  | P_lllb_store of int * int * Minic.Ast.binop * int
      (* LoadLocal a; LoadLocal b; Binop op; StoreLocal d *)
  | P_lllb_br of int * int * Minic.Ast.binop * Instr.branch_kind * int * int
      (* LoadLocal a; LoadLocal b; Binop op; Br *)
  | P_llcb of int * int * Minic.Ast.binop  (* LoadLocal s; Const k; Binop *)
  | P_lllb of int * int * Minic.Ast.binop  (* LoadLocal a; LoadLocal b; Binop *)
  | P_refg_ll_ix of int * int * int
      (* MakeRefGlobal (base, len); LoadLocal i; LoadIndex *)
  | P_refl_ll_ix of int * int * int
      (* MakeRefLocal (off, len); LoadLocal i; LoadIndex *)
  | P_cb_br of int * Minic.Ast.binop * Instr.branch_kind * int * int
      (* Const k; Binop op; Br *)
  | P_cb_store of int * Minic.Ast.binop * int  (* Const k; Binop; StoreLocal d *)
  | P_cb of int * Minic.Ast.binop  (* Const k; Binop *)
  | P_b_br of Minic.Ast.binop * Instr.branch_kind * int * int  (* Binop; Br *)
  | P_b_store of Minic.Ast.binop * int  (* Binop; StoreLocal d *)
  | P_b_ix of Minic.Ast.binop  (* Binop; LoadIndex *)
  | P_lb of int * Minic.Ast.binop  (* LoadLocal s; Binop *)
  | P_c_store of int * int  (* Const k; StoreLocal d *)
  | P_store_jmp of int * int  (* StoreLocal s; Jmp t *)
  | P_c_jmp of int * int  (* Const k; Jmp t *)
  | P_refg_ll of int * int * int  (* MakeRefGlobal (base, len); LoadLocal s *)

let pat_info = function
  | P_inc_jmp _ -> ("load.l+const+bin+store.l+jmp", 5)
  | P_llcb_store _ -> ("load.l+const+bin+store.l", 4)
  | P_llcb_br _ -> ("load.l+const+bin+brz", 4)
  | P_lllb_store _ -> ("load.l+load.l+bin+store.l", 4)
  | P_lllb_br _ -> ("load.l+load.l+bin+brz", 4)
  | P_llcb _ -> ("load.l+const+bin", 3)
  | P_lllb _ -> ("load.l+load.l+bin", 3)
  | P_refg_ll_ix _ -> ("ref.g+load.l+load.ix", 3)
  | P_refl_ll_ix _ -> ("ref.l+load.l+load.ix", 3)
  | P_cb_br _ -> ("const+bin+brz", 3)
  | P_cb_store _ -> ("const+bin+store.l", 3)
  | P_cb _ -> ("const+bin", 2)
  | P_b_br _ -> ("bin+brz", 2)
  | P_b_store _ -> ("bin+store.l", 2)
  | P_b_ix _ -> ("bin+load.ix", 2)
  | P_lb _ -> ("load.l+bin", 2)
  | P_c_store _ -> ("const+store.l", 2)
  | P_store_jmp _ -> ("store.l+jmp", 2)
  | P_c_jmp _ -> ("const+jmp", 2)
  | P_refg_ll _ -> ("ref.g+load.l", 2)

(* Longest match at [p]. Patterns only ever put a control transfer
   (Br/Jmp) in the last slot, so a fused window is straight-line by
   construction; [Instr.is_control] guards the interiors defensively. *)
let match_at (code : Instr.t array) p : pat option =
  let n = Array.length code in
  let i k = if p + k < n then Some code.(p + k) else None in
  let pat =
    match (code.(p), i 1, i 2, i 3, i 4) with
    | ( Instr.LoadLocal s,
        Some (Const k),
        Some (Binop op),
        Some (StoreLocal d),
        Some (Jmp t) ) ->
        Some (P_inc_jmp (s, k, op, d, t))
    | Instr.LoadLocal s, Some (Const k), Some (Binop op), Some (StoreLocal d), _
      ->
        Some (P_llcb_store (s, k, op, d))
    | ( Instr.LoadLocal s,
        Some (Const k),
        Some (Binop op),
        Some (Br { target; kind; cid }),
        _ ) ->
        Some (P_llcb_br (s, k, op, kind, cid, target))
    | ( Instr.LoadLocal a,
        Some (LoadLocal b),
        Some (Binop op),
        Some (StoreLocal d),
        _ ) ->
        Some (P_lllb_store (a, b, op, d))
    | ( Instr.LoadLocal a,
        Some (LoadLocal b),
        Some (Binop op),
        Some (Br { target; kind; cid }),
        _ ) ->
        Some (P_lllb_br (a, b, op, kind, cid, target))
    | Instr.LoadLocal s, Some (Const k), Some (Binop op), _, _ ->
        Some (P_llcb (s, k, op))
    | Instr.LoadLocal a, Some (LoadLocal b), Some (Binop op), _, _ ->
        Some (P_lllb (a, b, op))
    | Instr.MakeRefGlobal (base, len), Some (LoadLocal s), Some LoadIndex, _, _
      ->
        Some (P_refg_ll_ix (base, len, s))
    | Instr.MakeRefLocal (off, len), Some (LoadLocal s), Some LoadIndex, _, _ ->
        Some (P_refl_ll_ix (off, len, s))
    | Instr.Const k, Some (Binop op), Some (Br { target; kind; cid }), _, _ ->
        Some (P_cb_br (k, op, kind, cid, target))
    | Instr.Const k, Some (Binop op), Some (StoreLocal d), _, _ ->
        Some (P_cb_store (k, op, d))
    | Instr.Const k, Some (Binop op), _, _, _ -> Some (P_cb (k, op))
    | Instr.Binop op, Some (Br { target; kind; cid }), _, _, _ ->
        Some (P_b_br (op, kind, cid, target))
    | Instr.Binop op, Some (StoreLocal d), _, _, _ -> Some (P_b_store (op, d))
    | Instr.Binop op, Some LoadIndex, _, _, _ -> Some (P_b_ix op)
    | Instr.LoadLocal s, Some (Binop op), _, _, _ -> Some (P_lb (s, op))
    | Instr.Const k, Some (StoreLocal d), _, _, _ -> Some (P_c_store (k, d))
    | Instr.StoreLocal s, Some (Jmp t), _, _, _ -> Some (P_store_jmp (s, t))
    | Instr.Const k, Some (Jmp t), _, _, _ -> Some (P_c_jmp (k, t))
    | Instr.MakeRefGlobal (base, len), Some (LoadLocal s), _, _, _ ->
        Some (P_refg_ll (base, len, s))
    | _ -> None
  in
  (match pat with
  | Some pt ->
      let _, len = pat_info pt in
      for k = 0 to len - 2 do
        assert (not (Instr.is_control code.(p + k)))
      done
  | None -> ());
  pat

let fusions (prog : Program.t) =
  let acc = ref [] in
  Array.iteri
    (fun p _ ->
      match match_at prog.Program.code p with
      | Some pt ->
          let name, length = pat_info pt in
          acc := { head = p; length; name } :: !acc
      | None -> ())
    prog.Program.code;
  List.rev !acc

let exec ~hooked ?(trace_locals = true) ?prune ?(fuse = true)
    (hooks : Hooks.t) ?fuel ?max_depth (prog : Program.t) =
  let hook_locals = hooked && trace_locals in
  (* The static prune mask models the default event set only — under the
     -O0 local-tracing model it is dropped (see Machine.run_hooked). It
     is resolved here, at lowering time: a pruned pc's closure captures
     a no-op in place of the memory hook, so the hot loop pays nothing. *)
  let prune = if hook_locals then None else prune in
  let pruned p = match prune with Some m -> m.(p) | None -> false in
  let noop_mem ~pc:_ ~addr:_ = () in
  (* Fusion is applied in the two shipping configurations — unhooked, and
     hooked without local tracing (the profiler's mode). Under
     [trace_locals] (the -O0 stack-traffic model) every LoadLocal /
     StoreLocal fires its own memory event, so the local-heavy patterns
     buy little; that mode runs the unfused threaded code. *)
  let fuse = fuse && not hook_locals in
  let st = Vmstate.create ?max_depth prog in
  let code = prog.Program.code in
  let funcs = prog.Program.funcs in
  let n = Array.length code in
  let fuel = match fuel with Some f -> f | None -> max_int in
  (* Pre-resolve the hook record into its fields: events are fired
     through known closures, not record loads. *)
  let on_instr = hooks.Hooks.on_instr
  and on_read = hooks.Hooks.on_read
  and on_write = hooks.Hooks.on_write
  and on_branch = hooks.Hooks.on_branch
  and on_call = hooks.Hooks.on_call
  and on_ret = hooks.Hooks.on_ret
  and on_frame_release = hooks.Hooks.on_frame_release in
  let[@inline] tick p =
    if st.instructions >= fuel then trap st p "out of fuel";
    st.instructions <- st.instructions + 1
  in
  (* Trap helper for the fused bodies: an operand that must be an
     integer, read directly from memory instead of through the operand
     stack. [tpc] is the pc of the consuming instruction, where the
     reference engine's [pop_int] reports the mismatch. *)
  let[@inline] check_mem_int addr tpc =
    if Bytes.unsafe_get st.mem_tag addr <> tag_int then
      trap st tpc "expected integer, found array reference"
  in
  (* ---- single-instruction lowering -------------------------------------- *)
  let lower1 p (instr : Instr.t) : unit -> int =
    let nx = p + 1 in
    match instr with
    | Const v ->
        if hooked then (fun () ->
          tick p;
          on_instr ~pc:p;
          push st v tag_int;
          nx)
        else
          fun () ->
          tick p;
          push st v tag_int;
          nx
    | LoadLocal s ->
        if hook_locals then (fun () ->
          tick p;
          on_instr ~pc:p;
          let addr = st.frame_base + s in
          st.n_reads <- st.n_reads + 1;
          on_read ~pc:p ~addr;
          push st st.mem.(addr) (Bytes.unsafe_get st.mem_tag addr);
          nx)
        else if hooked then (fun () ->
          tick p;
          on_instr ~pc:p;
          let addr = st.frame_base + s in
          st.n_reads <- st.n_reads + 1;
          push st st.mem.(addr) (Bytes.unsafe_get st.mem_tag addr);
          nx)
        else
          fun () ->
          tick p;
          let addr = st.frame_base + s in
          st.n_reads <- st.n_reads + 1;
          push st st.mem.(addr) (Bytes.unsafe_get st.mem_tag addr);
          nx
    | StoreLocal s ->
        if hook_locals then (fun () ->
          tick p;
          on_instr ~pc:p;
          let addr = st.frame_base + s in
          let i = pop_slot st p in
          st.n_writes <- st.n_writes + 1;
          on_write ~pc:p ~addr;
          st.mem.(addr) <- st.stack.(i);
          Bytes.unsafe_set st.mem_tag addr (Bytes.unsafe_get st.stack_tag i);
          nx)
        else if hooked then (fun () ->
          tick p;
          on_instr ~pc:p;
          let addr = st.frame_base + s in
          let i = pop_slot st p in
          st.n_writes <- st.n_writes + 1;
          st.mem.(addr) <- st.stack.(i);
          Bytes.unsafe_set st.mem_tag addr (Bytes.unsafe_get st.stack_tag i);
          nx)
        else
          fun () ->
          tick p;
          let addr = st.frame_base + s in
          let i = pop_slot st p in
          st.n_writes <- st.n_writes + 1;
          st.mem.(addr) <- st.stack.(i);
          Bytes.unsafe_set st.mem_tag addr (Bytes.unsafe_get st.stack_tag i);
          nx
    | LoadGlobal addr ->
        let on_read = if pruned p then noop_mem else on_read in
        if hooked then (fun () ->
          tick p;
          on_instr ~pc:p;
          st.n_reads <- st.n_reads + 1;
          on_read ~pc:p ~addr;
          push st st.mem.(addr) (Bytes.unsafe_get st.mem_tag addr);
          nx)
        else
          fun () ->
          tick p;
          st.n_reads <- st.n_reads + 1;
          push st st.mem.(addr) (Bytes.unsafe_get st.mem_tag addr);
          nx
    | StoreGlobal addr ->
        let on_write = if pruned p then noop_mem else on_write in
        if hooked then (fun () ->
          tick p;
          on_instr ~pc:p;
          let i = pop_slot st p in
          st.n_writes <- st.n_writes + 1;
          on_write ~pc:p ~addr;
          st.mem.(addr) <- st.stack.(i);
          Bytes.unsafe_set st.mem_tag addr (Bytes.unsafe_get st.stack_tag i);
          nx)
        else
          fun () ->
          tick p;
          let i = pop_slot st p in
          st.n_writes <- st.n_writes + 1;
          st.mem.(addr) <- st.stack.(i);
          Bytes.unsafe_set st.mem_tag addr (Bytes.unsafe_get st.stack_tag i);
          nx
    | MakeRefGlobal (base, len) ->
        let r = pack_ref base len in
        if hooked then (fun () ->
          tick p;
          on_instr ~pc:p;
          push st r tag_ref;
          nx)
        else
          fun () ->
          tick p;
          push st r tag_ref;
          nx
    | MakeRefLocal (off, len) ->
        if hooked then (fun () ->
          tick p;
          on_instr ~pc:p;
          push st (pack_ref (st.frame_base + off) len) tag_ref;
          nx)
        else
          fun () ->
          tick p;
          push st (pack_ref (st.frame_base + off) len) tag_ref;
          nx
    | LoadIndex ->
        let on_read = if pruned p then noop_mem else on_read in
        if hooked then (fun () ->
          tick p;
          on_instr ~pc:p;
          let idx = pop_int st p in
          let r = pop_ref st p in
          let base = ref_base r and len = ref_len r in
          if idx < 0 || idx >= len then
            trap st p "index %d out of bounds [0,%d)" idx len;
          let addr = base + idx in
          st.n_reads <- st.n_reads + 1;
          on_read ~pc:p ~addr;
          push st st.mem.(addr) (Bytes.unsafe_get st.mem_tag addr);
          nx)
        else
          fun () ->
          tick p;
          let idx = pop_int st p in
          let r = pop_ref st p in
          let base = ref_base r and len = ref_len r in
          if idx < 0 || idx >= len then
            trap st p "index %d out of bounds [0,%d)" idx len;
          let addr = base + idx in
          st.n_reads <- st.n_reads + 1;
          push st st.mem.(addr) (Bytes.unsafe_get st.mem_tag addr);
          nx
    | StoreIndex ->
        let on_write = if pruned p then noop_mem else on_write in
        if hooked then (fun () ->
          tick p;
          on_instr ~pc:p;
          let i = pop_slot st p in
          let v = st.stack.(i) in
          let vtag = Bytes.unsafe_get st.stack_tag i in
          let idx = pop_int st p in
          let r = pop_ref st p in
          let base = ref_base r and len = ref_len r in
          if idx < 0 || idx >= len then
            trap st p "index %d out of bounds [0,%d)" idx len;
          let addr = base + idx in
          st.n_writes <- st.n_writes + 1;
          on_write ~pc:p ~addr;
          st.mem.(addr) <- v;
          Bytes.unsafe_set st.mem_tag addr vtag;
          nx)
        else
          fun () ->
          tick p;
          let i = pop_slot st p in
          let v = st.stack.(i) in
          let vtag = Bytes.unsafe_get st.stack_tag i in
          let idx = pop_int st p in
          let r = pop_ref st p in
          let base = ref_base r and len = ref_len r in
          if idx < 0 || idx >= len then
            trap st p "index %d out of bounds [0,%d)" idx len;
          let addr = base + idx in
          st.n_writes <- st.n_writes + 1;
          st.mem.(addr) <- v;
          Bytes.unsafe_set st.mem_tag addr vtag;
          nx
    | Binop op ->
        if hooked then (fun () ->
          tick p;
          on_instr ~pc:p;
          let b = pop_int st p in
          let a = pop_int st p in
          push st (eval_binop st p op a b) tag_int;
          nx)
        else
          fun () ->
          tick p;
          let b = pop_int st p in
          let a = pop_int st p in
          push st (eval_binop st p op a b) tag_int;
          nx
    | Unop op ->
        if hooked then (fun () ->
          tick p;
          on_instr ~pc:p;
          let a = pop_int st p in
          push st (eval_unop op a) tag_int;
          nx)
        else
          fun () ->
          tick p;
          let a = pop_int st p in
          push st (eval_unop op a) tag_int;
          nx
    | Jmp target ->
        if hooked then (fun () ->
          tick p;
          on_instr ~pc:p;
          target)
        else
          fun () ->
          tick p;
          target
    | Br { target; kind; cid } ->
        if hooked then (fun () ->
          tick p;
          on_instr ~pc:p;
          let v = pop_int st p in
          let taken = v = 0 in
          st.n_branches <- st.n_branches + 1;
          on_branch ~pc:p ~kind ~cid ~taken;
          if taken then target else nx)
        else
          fun () ->
          tick p;
          let v = pop_int st p in
          st.n_branches <- st.n_branches + 1;
          if v = 0 then target else nx
    | Dup2 ->
        if hooked then (fun () ->
          tick p;
          on_instr ~pc:p;
          if st.sp < 2 then trap st p "dup2 on short stack";
          let i = st.sp - 2 in
          let a = st.stack.(i) and ta = Bytes.unsafe_get st.stack_tag i in
          let b = st.stack.(i + 1)
          and tb = Bytes.unsafe_get st.stack_tag (i + 1) in
          push st a ta;
          push st b tb;
          nx)
        else
          fun () ->
          tick p;
          if st.sp < 2 then trap st p "dup2 on short stack";
          let i = st.sp - 2 in
          let a = st.stack.(i) and ta = Bytes.unsafe_get st.stack_tag i in
          let b = st.stack.(i + 1)
          and tb = Bytes.unsafe_get st.stack_tag (i + 1) in
          push st a ta;
          push st b tb;
          nx
    | Call fid when fid < 0 || fid >= Array.length funcs ->
        (* Malformed bytecode: defer the failure to execution time so the
           engines agree on *when* a bad fid is reported. *)
        fun () ->
          tick p;
          if hooked then on_instr ~pc:p;
          ignore funcs.(fid);
          assert false
    | Call fid ->
        let f = funcs.(fid) in
        let entry = f.Program.entry
        and nparams = f.Program.nparams
        and frame_slots = f.Program.frame_slots in
        let body () =
          if st.depth >= st.max_depth then trap st p "call stack overflow";
          if st.sp < nparams then trap st p "operand stack underflow";
          st.sp <- st.sp - nparams;
          if st.depth = Array.length st.call_ret then grow_call_records st;
          st.call_ret.(st.depth) <- p + 1;
          st.call_base.(st.depth) <- st.frame_base;
          st.call_fid.(st.depth) <- fid;
          st.depth <- st.depth + 1;
          let base = st.stack_top in
          ensure_mem st (base + frame_slots);
          Array.fill st.mem base frame_slots 0;
          Bytes.fill st.mem_tag base frame_slots tag_int;
          st.frame_base <- base;
          st.stack_top <- base + frame_slots;
          st.n_calls <- st.n_calls + 1;
          if st.depth > st.depth_hwm then st.depth_hwm <- st.depth;
          if st.stack_top > st.mem_hwm then st.mem_hwm <- st.stack_top;
          base
        in
        if hook_locals then (fun () ->
          tick p;
          on_instr ~pc:p;
          let base = body () in
          on_call ~pc:entry ~fid;
          for i = 0 to nparams - 1 do
            on_write ~pc:entry ~addr:(base + i);
            st.mem.(base + i) <- st.stack.(st.sp + i);
            Bytes.unsafe_set st.mem_tag (base + i)
              (Bytes.unsafe_get st.stack_tag (st.sp + i))
          done;
          entry)
        else if hooked then (fun () ->
          tick p;
          on_instr ~pc:p;
          let base = body () in
          on_call ~pc:entry ~fid;
          for i = 0 to nparams - 1 do
            st.mem.(base + i) <- st.stack.(st.sp + i);
            Bytes.unsafe_set st.mem_tag (base + i)
              (Bytes.unsafe_get st.stack_tag (st.sp + i))
          done;
          entry)
        else
          fun () ->
          tick p;
          let base = body () in
          for i = 0 to nparams - 1 do
            st.mem.(base + i) <- st.stack.(st.sp + i);
            Bytes.unsafe_set st.mem_tag (base + i)
              (Bytes.unsafe_get st.stack_tag (st.sp + i))
          done;
          entry
    | Ret ->
        if hooked then (fun () ->
          tick p;
          on_instr ~pc:p;
          let i = pop_slot st p in
          let v = st.stack.(i) in
          let vtag = Bytes.unsafe_get st.stack_tag i in
          st.depth <- st.depth - 1;
          let ret_pc = st.call_ret.(st.depth) in
          let saved_base = st.call_base.(st.depth) in
          let fid = st.call_fid.(st.depth) in
          let f = funcs.(fid) in
          on_ret ~pc:p ~fid;
          on_frame_release ~base:st.frame_base ~size:f.Program.frame_slots;
          st.n_frames_released <- st.n_frames_released + 1;
          st.stack_top <- st.frame_base;
          st.frame_base <- saved_base;
          push st v vtag;
          ret_pc)
        else
          fun () ->
          tick p;
          let i = pop_slot st p in
          let v = st.stack.(i) in
          let vtag = Bytes.unsafe_get st.stack_tag i in
          st.depth <- st.depth - 1;
          let ret_pc = st.call_ret.(st.depth) in
          let saved_base = st.call_base.(st.depth) in
          st.n_frames_released <- st.n_frames_released + 1;
          st.stack_top <- st.frame_base;
          st.frame_base <- saved_base;
          push st v vtag;
          ret_pc
    | Pop ->
        if hooked then (fun () ->
          tick p;
          on_instr ~pc:p;
          ignore (pop_slot st p);
          nx)
        else
          fun () ->
          tick p;
          ignore (pop_slot st p);
          nx
    | Print ->
        if hooked then (fun () ->
          tick p;
          on_instr ~pc:p;
          let v = pop_int st p in
          st.out <- v :: st.out;
          nx)
        else
          fun () ->
          tick p;
          let v = pop_int st p in
          st.out <- v :: st.out;
          nx
    | Halt ->
        if hooked then (fun () ->
          tick p;
          on_instr ~pc:p;
          let v = if st.sp > 0 then pop_int st p else 0 in
          raise (Halted v))
        else
          fun () ->
          tick p;
          let v = if st.sp > 0 then pop_int st p else 0 in
          raise (Halted v)
  in
  (* ---- superinstruction lowering ---------------------------------------- *)
  (* [u] is the head's single-instruction closure: when fewer than [k]
     steps of fuel remain, the fused step degrades to one-at-a-time
     execution so the "out of fuel" trap lands on the exact pc. *)
  let lower_fused p (pt : pat) (u : unit -> int) : unit -> int =
    let _, k = pat_info pt in
    let fits () = st.instructions + k <= fuel in
    match pt with
    | P_inc_jmp (s, kv, op, d, t) ->
        if hooked then (fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            on_instr ~pc:p;
            on_instr ~pc:(p + 1);
            on_instr ~pc:(p + 2);
            let sa = st.frame_base + s in
            st.n_reads <- st.n_reads + 1;
            check_mem_int sa (p + 2);
            let v = eval_binop st (p + 2) op st.mem.(sa) kv in
            on_instr ~pc:(p + 3);
            st.n_writes <- st.n_writes + 1;
            let da = st.frame_base + d in
            st.mem.(da) <- v;
            Bytes.unsafe_set st.mem_tag da tag_int;
            on_instr ~pc:(p + 4);
            t
          end)
        else
          fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            let sa = st.frame_base + s in
            st.n_reads <- st.n_reads + 1;
            check_mem_int sa (p + 2);
            let v = eval_binop st (p + 2) op st.mem.(sa) kv in
            st.n_writes <- st.n_writes + 1;
            let da = st.frame_base + d in
            st.mem.(da) <- v;
            Bytes.unsafe_set st.mem_tag da tag_int;
            t
          end
    | P_llcb_store (s, kv, op, d) ->
        let nx = p + 4 in
        if hooked then (fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            on_instr ~pc:p;
            on_instr ~pc:(p + 1);
            on_instr ~pc:(p + 2);
            let sa = st.frame_base + s in
            st.n_reads <- st.n_reads + 1;
            check_mem_int sa (p + 2);
            let v = eval_binop st (p + 2) op st.mem.(sa) kv in
            on_instr ~pc:(p + 3);
            st.n_writes <- st.n_writes + 1;
            let da = st.frame_base + d in
            st.mem.(da) <- v;
            Bytes.unsafe_set st.mem_tag da tag_int;
            nx
          end)
        else
          fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            let sa = st.frame_base + s in
            st.n_reads <- st.n_reads + 1;
            check_mem_int sa (p + 2);
            let v = eval_binop st (p + 2) op st.mem.(sa) kv in
            st.n_writes <- st.n_writes + 1;
            let da = st.frame_base + d in
            st.mem.(da) <- v;
            Bytes.unsafe_set st.mem_tag da tag_int;
            nx
          end
    | P_llcb_br (s, kv, op, kind, cid, target) ->
        let nx = p + 4 in
        if hooked then (fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            on_instr ~pc:p;
            on_instr ~pc:(p + 1);
            on_instr ~pc:(p + 2);
            let sa = st.frame_base + s in
            st.n_reads <- st.n_reads + 1;
            check_mem_int sa (p + 2);
            let v = eval_binop st (p + 2) op st.mem.(sa) kv in
            on_instr ~pc:(p + 3);
            let taken = v = 0 in
            st.n_branches <- st.n_branches + 1;
            on_branch ~pc:(p + 3) ~kind ~cid ~taken;
            if taken then target else nx
          end)
        else
          fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            let sa = st.frame_base + s in
            st.n_reads <- st.n_reads + 1;
            check_mem_int sa (p + 2);
            let v = eval_binop st (p + 2) op st.mem.(sa) kv in
            st.n_branches <- st.n_branches + 1;
            if v = 0 then target else nx
          end
    | P_lllb_store (a, b, op, d) ->
        let nx = p + 4 in
        if hooked then (fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            on_instr ~pc:p;
            on_instr ~pc:(p + 1);
            on_instr ~pc:(p + 2);
            let aa = st.frame_base + a and ab = st.frame_base + b in
            st.n_reads <- st.n_reads + 2;
            check_mem_int ab (p + 2);
            check_mem_int aa (p + 2);
            let v = eval_binop st (p + 2) op st.mem.(aa) st.mem.(ab) in
            on_instr ~pc:(p + 3);
            st.n_writes <- st.n_writes + 1;
            let da = st.frame_base + d in
            st.mem.(da) <- v;
            Bytes.unsafe_set st.mem_tag da tag_int;
            nx
          end)
        else
          fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            let aa = st.frame_base + a and ab = st.frame_base + b in
            st.n_reads <- st.n_reads + 2;
            check_mem_int ab (p + 2);
            check_mem_int aa (p + 2);
            let v = eval_binop st (p + 2) op st.mem.(aa) st.mem.(ab) in
            st.n_writes <- st.n_writes + 1;
            let da = st.frame_base + d in
            st.mem.(da) <- v;
            Bytes.unsafe_set st.mem_tag da tag_int;
            nx
          end
    | P_lllb_br (a, b, op, kind, cid, target) ->
        let nx = p + 4 in
        if hooked then (fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            on_instr ~pc:p;
            on_instr ~pc:(p + 1);
            on_instr ~pc:(p + 2);
            let aa = st.frame_base + a and ab = st.frame_base + b in
            st.n_reads <- st.n_reads + 2;
            check_mem_int ab (p + 2);
            check_mem_int aa (p + 2);
            let v = eval_binop st (p + 2) op st.mem.(aa) st.mem.(ab) in
            on_instr ~pc:(p + 3);
            let taken = v = 0 in
            st.n_branches <- st.n_branches + 1;
            on_branch ~pc:(p + 3) ~kind ~cid ~taken;
            if taken then target else nx
          end)
        else
          fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            let aa = st.frame_base + a and ab = st.frame_base + b in
            st.n_reads <- st.n_reads + 2;
            check_mem_int ab (p + 2);
            check_mem_int aa (p + 2);
            let v = eval_binop st (p + 2) op st.mem.(aa) st.mem.(ab) in
            st.n_branches <- st.n_branches + 1;
            if v = 0 then target else nx
          end
    | P_llcb (s, kv, op) ->
        let nx = p + 3 in
        if hooked then (fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            on_instr ~pc:p;
            on_instr ~pc:(p + 1);
            on_instr ~pc:(p + 2);
            let sa = st.frame_base + s in
            st.n_reads <- st.n_reads + 1;
            check_mem_int sa (p + 2);
            push st (eval_binop st (p + 2) op st.mem.(sa) kv) tag_int;
            nx
          end)
        else
          fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            let sa = st.frame_base + s in
            st.n_reads <- st.n_reads + 1;
            check_mem_int sa (p + 2);
            push st (eval_binop st (p + 2) op st.mem.(sa) kv) tag_int;
            nx
          end
    | P_lllb (a, b, op) ->
        let nx = p + 3 in
        if hooked then (fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            on_instr ~pc:p;
            on_instr ~pc:(p + 1);
            on_instr ~pc:(p + 2);
            let aa = st.frame_base + a and ab = st.frame_base + b in
            st.n_reads <- st.n_reads + 2;
            check_mem_int ab (p + 2);
            check_mem_int aa (p + 2);
            push st (eval_binop st (p + 2) op st.mem.(aa) st.mem.(ab)) tag_int;
            nx
          end)
        else
          fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            let aa = st.frame_base + a and ab = st.frame_base + b in
            st.n_reads <- st.n_reads + 2;
            check_mem_int ab (p + 2);
            check_mem_int aa (p + 2);
            push st (eval_binop st (p + 2) op st.mem.(aa) st.mem.(ab)) tag_int;
            nx
          end
    | P_refg_ll_ix (base, len, s) | P_refl_ll_ix (base, len, s) ->
        (* For the local-array variant [base] is a frame offset; the
           absolute base is resolved against [frame_base] at run time. *)
        let local = match pt with P_refl_ll_ix _ -> true | _ -> false in
        let on_read = if pruned (p + 2) then noop_mem else on_read in
        let nx = p + 3 in
        if hooked then (fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            on_instr ~pc:p;
            on_instr ~pc:(p + 1);
            on_instr ~pc:(p + 2);
            let sa = st.frame_base + s in
            check_mem_int sa (p + 2);
            let idx = st.mem.(sa) in
            if idx < 0 || idx >= len then
              trap st (p + 2) "index %d out of bounds [0,%d)" idx len;
            let abase = if local then st.frame_base + base else base in
            let addr = abase + idx in
            st.n_reads <- st.n_reads + 2;
            on_read ~pc:(p + 2) ~addr;
            push st st.mem.(addr) (Bytes.unsafe_get st.mem_tag addr);
            nx
          end)
        else
          fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            let sa = st.frame_base + s in
            check_mem_int sa (p + 2);
            let idx = st.mem.(sa) in
            if idx < 0 || idx >= len then
              trap st (p + 2) "index %d out of bounds [0,%d)" idx len;
            let abase = if local then st.frame_base + base else base in
            let addr = abase + idx in
            st.n_reads <- st.n_reads + 2;
            push st st.mem.(addr) (Bytes.unsafe_get st.mem_tag addr);
            nx
          end
    | P_cb_br (kv, op, kind, cid, target) ->
        let nx = p + 3 in
        if hooked then (fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            on_instr ~pc:p;
            on_instr ~pc:(p + 1);
            let a = pop_int st (p + 1) in
            let v = eval_binop st (p + 1) op a kv in
            on_instr ~pc:(p + 2);
            let taken = v = 0 in
            st.n_branches <- st.n_branches + 1;
            on_branch ~pc:(p + 2) ~kind ~cid ~taken;
            if taken then target else nx
          end)
        else
          fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            let a = pop_int st (p + 1) in
            let v = eval_binop st (p + 1) op a kv in
            st.n_branches <- st.n_branches + 1;
            if v = 0 then target else nx
          end
    | P_cb_store (kv, op, d) ->
        let nx = p + 3 in
        if hooked then (fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            on_instr ~pc:p;
            on_instr ~pc:(p + 1);
            let a = pop_int st (p + 1) in
            let v = eval_binop st (p + 1) op a kv in
            on_instr ~pc:(p + 2);
            st.n_writes <- st.n_writes + 1;
            let da = st.frame_base + d in
            st.mem.(da) <- v;
            Bytes.unsafe_set st.mem_tag da tag_int;
            nx
          end)
        else
          fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            let a = pop_int st (p + 1) in
            let v = eval_binop st (p + 1) op a kv in
            st.n_writes <- st.n_writes + 1;
            let da = st.frame_base + d in
            st.mem.(da) <- v;
            Bytes.unsafe_set st.mem_tag da tag_int;
            nx
          end
    | P_cb (kv, op) ->
        let nx = p + 2 in
        if hooked then (fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            on_instr ~pc:p;
            on_instr ~pc:(p + 1);
            let a = pop_int st (p + 1) in
            push st (eval_binop st (p + 1) op a kv) tag_int;
            nx
          end)
        else
          fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            let a = pop_int st (p + 1) in
            push st (eval_binop st (p + 1) op a kv) tag_int;
            nx
          end
    | P_b_br (op, kind, cid, target) ->
        let nx = p + 2 in
        if hooked then (fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            on_instr ~pc:p;
            let b = pop_int st p in
            let a = pop_int st p in
            let v = eval_binop st p op a b in
            on_instr ~pc:(p + 1);
            let taken = v = 0 in
            st.n_branches <- st.n_branches + 1;
            on_branch ~pc:(p + 1) ~kind ~cid ~taken;
            if taken then target else nx
          end)
        else
          fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            let b = pop_int st p in
            let a = pop_int st p in
            let v = eval_binop st p op a b in
            st.n_branches <- st.n_branches + 1;
            if v = 0 then target else nx
          end
    | P_b_store (op, d) ->
        let nx = p + 2 in
        if hooked then (fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            on_instr ~pc:p;
            let b = pop_int st p in
            let a = pop_int st p in
            let v = eval_binop st p op a b in
            on_instr ~pc:(p + 1);
            st.n_writes <- st.n_writes + 1;
            let da = st.frame_base + d in
            st.mem.(da) <- v;
            Bytes.unsafe_set st.mem_tag da tag_int;
            nx
          end)
        else
          fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            let b = pop_int st p in
            let a = pop_int st p in
            let v = eval_binop st p op a b in
            st.n_writes <- st.n_writes + 1;
            let da = st.frame_base + d in
            st.mem.(da) <- v;
            Bytes.unsafe_set st.mem_tag da tag_int;
            nx
          end
    | P_b_ix op ->
        let on_read = if pruned (p + 1) then noop_mem else on_read in
        let nx = p + 2 in
        if hooked then (fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            on_instr ~pc:p;
            let b = pop_int st p in
            let a = pop_int st p in
            let idx = eval_binop st p op a b in
            on_instr ~pc:(p + 1);
            let r = pop_ref st (p + 1) in
            let base = ref_base r and len = ref_len r in
            if idx < 0 || idx >= len then
              trap st (p + 1) "index %d out of bounds [0,%d)" idx len;
            let addr = base + idx in
            st.n_reads <- st.n_reads + 1;
            on_read ~pc:(p + 1) ~addr;
            push st st.mem.(addr) (Bytes.unsafe_get st.mem_tag addr);
            nx
          end)
        else
          fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            let b = pop_int st p in
            let a = pop_int st p in
            let idx = eval_binop st p op a b in
            let r = pop_ref st (p + 1) in
            let base = ref_base r and len = ref_len r in
            if idx < 0 || idx >= len then
              trap st (p + 1) "index %d out of bounds [0,%d)" idx len;
            let addr = base + idx in
            st.n_reads <- st.n_reads + 1;
            push st st.mem.(addr) (Bytes.unsafe_get st.mem_tag addr);
            nx
          end
    | P_lb (s, op) ->
        let nx = p + 2 in
        if hooked then (fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            on_instr ~pc:p;
            let sa = st.frame_base + s in
            st.n_reads <- st.n_reads + 1;
            on_instr ~pc:(p + 1);
            check_mem_int sa (p + 1);
            let a = pop_int st (p + 1) in
            push st (eval_binop st (p + 1) op a st.mem.(sa)) tag_int;
            nx
          end)
        else
          fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            let sa = st.frame_base + s in
            st.n_reads <- st.n_reads + 1;
            check_mem_int sa (p + 1);
            let a = pop_int st (p + 1) in
            push st (eval_binop st (p + 1) op a st.mem.(sa)) tag_int;
            nx
          end
    | P_c_store (kv, d) ->
        let nx = p + 2 in
        if hooked then (fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            on_instr ~pc:p;
            on_instr ~pc:(p + 1);
            st.n_writes <- st.n_writes + 1;
            let da = st.frame_base + d in
            st.mem.(da) <- kv;
            Bytes.unsafe_set st.mem_tag da tag_int;
            nx
          end)
        else
          fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            st.n_writes <- st.n_writes + 1;
            let da = st.frame_base + d in
            st.mem.(da) <- kv;
            Bytes.unsafe_set st.mem_tag da tag_int;
            nx
          end
    | P_store_jmp (s, t) ->
        if hooked then (fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            on_instr ~pc:p;
            let addr = st.frame_base + s in
            let i = pop_slot st p in
            st.n_writes <- st.n_writes + 1;
            st.mem.(addr) <- st.stack.(i);
            Bytes.unsafe_set st.mem_tag addr (Bytes.unsafe_get st.stack_tag i);
            on_instr ~pc:(p + 1);
            t
          end)
        else
          fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            let addr = st.frame_base + s in
            let i = pop_slot st p in
            st.n_writes <- st.n_writes + 1;
            st.mem.(addr) <- st.stack.(i);
            Bytes.unsafe_set st.mem_tag addr (Bytes.unsafe_get st.stack_tag i);
            t
          end
    | P_c_jmp (kv, t) ->
        if hooked then (fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            on_instr ~pc:p;
            push st kv tag_int;
            on_instr ~pc:(p + 1);
            t
          end)
        else
          fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            push st kv tag_int;
            t
          end
    | P_refg_ll (base, len, s) ->
        let r = pack_ref base len in
        let nx = p + 2 in
        if hooked then (fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            on_instr ~pc:p;
            push st r tag_ref;
            on_instr ~pc:(p + 1);
            let sa = st.frame_base + s in
            st.n_reads <- st.n_reads + 1;
            push st st.mem.(sa) (Bytes.unsafe_get st.mem_tag sa);
            nx
          end)
        else
          fun () ->
          if not (fits ()) then u ()
          else begin
            st.instructions <- st.instructions + k;
            push st r tag_ref;
            let sa = st.frame_base + s in
            st.n_reads <- st.n_reads + 1;
            push st st.mem.(sa) (Bytes.unsafe_get st.mem_tag sa);
            nx
          end
  in
  let steps = Array.make n (fun () -> assert false) in
  for p = 0 to n - 1 do
    steps.(p) <- lower1 p code.(p)
  done;
  if fuse then
    for p = 0 to n - 1 do
      match match_at code p with
      | Some pt -> steps.(p) <- lower_fused p pt steps.(p)
      | None -> ()
    done;
  let pc = ref 0 in
  let exit_value =
    try
      while true do
        pc := steps.(!pc) ()
      done;
      assert false
    with Halted v -> v
  in
  Vmstate.finish st exit_value
