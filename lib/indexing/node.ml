type t = {
  mutable label : int;
  mutable tenter : int;
  mutable texit : int;
  mutable parent : t option;
  mutable is_func : bool;
}

let make () = { label = -1; tenter = 0; texit = 0; parent = None; is_func = false }
let[@inline] duration c = c.texit - c.tenter
let[@inline] active c = c.texit = 0
let[@inline] covers c th = c.tenter <= th && th < c.texit

let pp ppf c =
  Format.fprintf ppf "{pc=%d; [%d,%d)%s%s}" c.label c.tenter c.texit
    (if c.is_func then " fn" else "")
    (if active c then " active" else "")
