(** The instrumentation rules of Fig. 5, adapted to the VM's hook events.

    - rule (1)/(2): procedure entry/exit push/pop a function node;
    - rule (3): a [BrIf] predicate pushes a conditional construct
      (regardless of direction — both arms belong to it);
    - rule (4): a [BrLoop] predicate closes the previous iteration of the
      same predicate and opens a new one (unless the branch exits the
      loop). Closing uses {!Index_tree.pop_through}, which also unwinds
      guard conditionals left open by [break]/[continue] (their ipdom is
      the loop exit) so iterations remain siblings;
    - rule (5): before an instruction executes, every top predicate whose
      immediate post-dominator is that pc is popped.

    Call these from the corresponding {!Vm.Hooks.t} callbacks; [on_instr]
    also advances the clock, so timestamps equal retired instructions. *)

type t

val create : ipdom:int array -> tree:Index_tree.t -> t
(** [ipdom] is {!Cfa.Analysis.t.ipdom_of_pc}. *)

val tree : t -> Index_tree.t

val on_instr : t -> pc:int -> unit

val on_instr_range : t -> lo:int -> hi:int -> unit
(** Exactly [for pc = lo to hi do on_instr t ~pc done], but ranges
    containing no construct join point (precomputed prefix counts over
    the ipdom-target set decide in O(1)) advance the clock in a single
    add. This is the bulk sink the profiler hands to the register
    engine's event ring, where one drained [Instr_range] event covers a
    whole IR segment. *)

val range_has_target : t -> lo:int -> hi:int -> bool
(** Whether [on_instr] could do anything other than tick the clock
    anywhere in [lo, hi] — i.e. the range holds a rule-(5) join point.
    When it cannot, a segment's only observable effect is the clock
    advance, so an event ring that stamps events with the emitting
    clock may elide the segment from the stream entirely. *)

val on_branch : t -> pc:int -> kind:Vm.Instr.branch_kind -> taken:bool -> unit
val on_call : t -> entry_pc:int -> unit
val on_ret : t -> unit
val finish : t -> unit
(** Pop every remaining construct (program halt). *)

val forced_pops : t -> int
(** Number of defensive pops performed at function exit for constructs
    whose ipdom never executed (should be 0 for compiler-generated code;
    exposed for tests). *)
