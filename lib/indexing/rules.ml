type t = {
  ipdom : int array;
  ipdom_target : Bytes.t;
      (* [ipdom_target] holds '\001' at [pc] iff some construct label
         has [pc] as its immediate post-dominator — i.e. rule (5) can
         possibly fire here. Most executed pcs are not a join point of
         any construct, so the per-instruction fast path is one byte
         load and a branch instead of a stack-top inspection. Bytes
         rather than bool array so the whole program's flags fit in a
         few cache lines, and indexed unsafely: every pc the engines
         pass is in [0, code length), the array's exact extent. *)
  tgt_pfx : int array;
      (* [tgt_pfx.(pc)] = number of ipdom-target pcs below [pc]; length
         code+1. A pc range [lo..hi] contains a rule-(5) join point iff
         [tgt_pfx.(hi+1) <> tgt_pfx.(lo)] — two loads decide whether
         {!on_instr_range} can advance the clock in bulk or must probe
         per pc. *)
  tr : Index_tree.t;
  mutable forced : int;
}

let create ~ipdom ~tree =
  let n = Array.length ipdom in
  let ipdom_target = Bytes.make n '\000' in
  Array.iter
    (fun d -> if d >= 0 && d < n then Bytes.set ipdom_target d '\001')
    ipdom;
  let tgt_pfx = Array.make (n + 1) 0 in
  for pc = 0 to n - 1 do
    tgt_pfx.(pc + 1) <-
      (tgt_pfx.(pc) + if Bytes.get ipdom_target pc <> '\000' then 1 else 0)
  done;
  { ipdom; ipdom_target; tgt_pfx; tr = tree; forced = 0 }

let tree t = t.tr

(* Rule (5): close every construct whose immediate post-dominator is
   this instruction. Out of line so [on_instr] itself stays small enough
   to inline into the hook closure. *)
let rec pops t pc =
  if Index_tree.depth t.tr > 0 then begin
    let c = Index_tree.peek t.tr in
    if (not c.Node.is_func) && t.ipdom.(c.Node.label) = pc then begin
      ignore (Index_tree.pop t.tr);
      pops t pc
    end
  end

let[@inline] on_instr t ~pc =
  Index_tree.tick t.tr;
  if Bytes.unsafe_get t.ipdom_target pc <> '\000' then pops t pc

(* Equivalent to [on_instr] at every pc of [lo..hi] in order. Ranges
   with no ipdom target in them — most executed segments — advance the
   clock in one add; rule (5) cannot fire inside them, and the clock is
   only observable at events, which the caller (the ring drain) replays
   strictly after this whole range. *)
(* Does [lo, hi] contain a rule-(5) join point? Two prefix-sum loads;
   the register engine asks this once per IR segment at closure-build
   time to decide whether the segment must appear in the event ring at
   all — target-free segments only move the clock, which the ring
   carries on the events themselves. *)
let range_has_target t ~lo ~hi =
  Array.unsafe_get t.tgt_pfx (hi + 1) <> Array.unsafe_get t.tgt_pfx lo

let on_instr_range t ~lo ~hi =
  if Array.unsafe_get t.tgt_pfx (hi + 1) = Array.unsafe_get t.tgt_pfx lo then
    Index_tree.bulk_tick t.tr (hi - lo + 1)
  else
    for pc = lo to hi do
      Index_tree.tick t.tr;
      if Bytes.unsafe_get t.ipdom_target pc <> '\000' then pops t pc
    done

let on_branch t ~pc ~kind ~taken =
  match kind with
  | Vm.Instr.BrSc -> ()
  | Vm.Instr.BrIf -> ignore (Index_tree.push t.tr ~label:pc ~is_func:false)
  | Vm.Instr.BrLoop ->
      (* Rule (4): close the previous iteration (and any break/continue
         guards it left open), then open the next one unless exiting. *)
      ignore (Index_tree.pop_through t.tr ~label:pc);
      if not taken then ignore (Index_tree.push t.tr ~label:pc ~is_func:false)

let on_call t ~entry_pc =
  ignore (Index_tree.push t.tr ~label:entry_pc ~is_func:true)

let on_ret t =
  (* Rule (2). Constructs above the function node whose ipdom was jumped
     over should not exist (the epilogue post-dominates the body); pop
     them defensively if present. *)
  let rec unwind () =
    match Index_tree.top t.tr with
    | Some c when not c.Node.is_func ->
        t.forced <- t.forced + 1;
        ignore (Index_tree.pop t.tr);
        unwind ()
    | Some _ -> ignore (Index_tree.pop t.tr)
    | None -> invalid_arg "Rules.on_ret: empty stack"
  in
  unwind ()

let finish t =
  while Index_tree.depth t.tr > 0 do
    ignore (Index_tree.pop t.tr)
  done

let forced_pops t = t.forced
