type t = {
  q : Node.t Queue.t;
  scan_limit : int;
  capacity : int;
  allocated : Obs.Counter.t;
  reused : Obs.Counter.t;
  scan_len : Obs.Histogram.t;  (* head entries examined per acquire *)
}

let create ?(scan_limit = 8) ?(capacity = 1_000_000) () =
  {
    q = Queue.create ();
    scan_limit;
    capacity;
    allocated = Obs.Counter.make ();
    reused = Obs.Counter.make ();
    scan_len = Obs.Histogram.make ();
  }

let retirable ~now (c : Node.t) = now - c.texit >= c.texit - c.tenter

let fresh t =
  Obs.Counter.incr t.allocated;
  Node.make ()

let acquire t ~now =
  (* Below capacity, allocate fresh nodes — the paper's pre-allocated 1M
     pool behaves this way, which is what keeps completed instances
     addressable long enough to report large-Tdep edges. At capacity,
     examine up to [scan_limit] entries from the head (the oldest
     completions); entries not yet retirable are rotated to the tail. *)
  if Obs.Counter.get t.allocated < t.capacity then begin
    (* A below-capacity acquire examines zero queue entries; record it so
       the histogram's count tracks every acquire and the mean reads as
       "entries examined per acquire" even for runs that never reach
       capacity (BENCH_2's count:0 artifact). *)
    Obs.Histogram.observe t.scan_len 0;
    fresh t
  end
  else
    let budget = min t.scan_limit (Queue.length t.q) in
    let rec scan k =
      if k = 0 || Queue.is_empty t.q then begin
        Obs.Histogram.observe t.scan_len (budget - k);
        None
      end
      else
        let c = Queue.pop t.q in
        if retirable ~now c then begin
          Obs.Histogram.observe t.scan_len (budget - k + 1);
          Some c
        end
        else begin
          Queue.push c t.q;
          scan (k - 1)
        end
    in
    match scan budget with
    | Some c ->
        Obs.Counter.incr t.reused;
        c
    | None -> fresh t

let release t c = Queue.push c t.q
let allocated t = Obs.Counter.get t.allocated
let reused t = Obs.Counter.get t.reused
let size t = Queue.length t.q

let register_obs t reg =
  Obs.Registry.register_counter reg "pool.allocated" t.allocated;
  Obs.Registry.register_counter reg "pool.reused" t.reused;
  Obs.Registry.register_histogram reg "pool.scan_len" t.scan_len
