type t = {
  pool : Construct_pool.t;
  mutable stack : Node.t array;
  mutable sp : int;
  mutable time : int;
  o_depth : Obs.Gauge.t;
  on_push : Node.t -> unit;
  on_pop : Node.t -> unit;
}

let create ?scan_limit ?pool_capacity ?(on_push = fun _ -> ())
    ?(on_pop = fun _ -> ()) () =
  {
    pool = Construct_pool.create ?scan_limit ?capacity:pool_capacity ();
    stack = Array.make 64 (Node.make ());
    sp = 0;
    time = 0;
    o_depth = Obs.Gauge.make ();
    on_push;
    on_pop;
  }

let[@inline] now t = t.time
let[@inline] tick t = t.time <- t.time + 1
let[@inline] bulk_tick t n = t.time <- t.time + n
let[@inline] set_now t n = t.time <- n
let[@inline] depth t = t.sp
let top t = if t.sp = 0 then None else Some t.stack.(t.sp - 1)

(* Option-free [top] for per-instruction hot paths: the boxing in [top]
   is one minor-heap allocation per call, which at one call per executed
   instruction is the profiler's single largest allocation source. *)
let[@inline] peek t = t.stack.(t.sp - 1)

let push t ~label ~is_func =
  let c = Construct_pool.acquire t.pool ~now:t.time in
  c.Node.label <- label;
  c.Node.tenter <- t.time;
  c.Node.texit <- 0;
  c.Node.parent <- top t;
  c.Node.is_func <- is_func;
  if t.sp = Array.length t.stack then begin
    let stack = Array.make (2 * t.sp) c in
    Array.blit t.stack 0 stack 0 t.sp;
    t.stack <- stack
  end;
  t.stack.(t.sp) <- c;
  t.sp <- t.sp + 1;
  Obs.Gauge.set t.o_depth t.sp;
  t.on_push c;
  c

let pop t =
  if t.sp = 0 then invalid_arg "Index_tree.pop: empty stack";
  t.sp <- t.sp - 1;
  let c = t.stack.(t.sp) in
  c.Node.texit <- t.time;
  t.on_pop c;
  Construct_pool.release t.pool c;
  c

let pop_through t ~label =
  (* Search down to (not through) the nearest function node. *)
  let rec find i =
    if i < 0 then None
    else
      let c = t.stack.(i) in
      if c.Node.label = label && not c.Node.is_func then Some i
      else if c.Node.is_func then None
      else find (i - 1)
  in
  match find (t.sp - 1) with
  | None -> false
  | Some i ->
      while t.sp > i do
        ignore (pop t)
      done;
      true

let index_of_top t = Array.to_list (Array.sub t.stack 0 t.sp) |> List.map (fun c -> c.Node.label)

let pool_allocated t = Construct_pool.allocated t.pool
let pool_reused t = Construct_pool.reused t.pool

let register_obs t reg =
  Obs.Registry.register_gauge reg "tree.depth" t.o_depth;
  Construct_pool.register_obs t.pool reg

let stats t =
  Printf.sprintf "depth=%d time=%d pool_allocated=%d pool_reused=%d pool_size=%d"
    t.sp t.time
    (Construct_pool.allocated t.pool)
    (Construct_pool.reused t.pool)
    (Construct_pool.size t.pool)
