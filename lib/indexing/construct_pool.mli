(** The construct pool of Table I: bounded storage for completed construct
    instances, with lazy retirement.

    Completed instances are appended at the tail; acquisition scans a few
    entries from the head (the oldest completions) for one that is safe to
    retire — an instance [c] may be reused once [now - c.texit >=
    c.texit - c.tenter], because any dependence whose head lies inside [c]
    would from then on have [Tdep > Tdur(c)] and so cannot change [c]'s
    profile (Theorem 1). If no head entry is retirable a fresh node is
    allocated, so the pool grows only as far as the paper's
    [O(M·N + L)] bound (within the scan-limit constant). *)

type t

val create : ?scan_limit:int -> ?capacity:int -> unit -> t
(** [scan_limit] (default 8) bounds how many head entries are examined per
    acquisition. [capacity] (default 1M, matching the paper's pool size)
    is the number of nodes allocated before recycling starts; smaller
    capacities trade retention of large-[Tdep] edges for memory. *)

val acquire : t -> now:int -> Node.t
(** A node safe to (re)use at time [now]: either a retired pool entry or a
    fresh allocation. The returned node is not in the pool. *)

val release : t -> Node.t -> unit
(** Appends a completed instance at the tail, keeping it addressable for
    as long as possible before reuse (lazy retirement). *)

val allocated : t -> int
(** Total nodes ever allocated (live + pooled) — the memory footprint. *)

val reused : t -> int
(** Number of acquisitions served by recycling. *)

val size : t -> int
(** Completed instances currently held. *)

val register_obs : t -> Obs.Registry.t -> unit
(** Register allocation/reuse counters and the per-acquire scan-length
    histogram under the ["pool."] prefix. *)
