(** The execution index tree (paper §III-A, Table I).

    Maintains the indexing stack (IDS) whose state is the execution index
    of the current point, the clock (retired instruction count), and the
    construct pool. Completed subtrees stay addressable through parent
    pointers held by still-referenced nodes until the pool recycles them.

    The [on_pop] callback observes every completed instance (profile
    aggregation — Table I lines 18–22 — lives in the profiler, which also
    handles the recursion nesting counters of §III-B). *)

type t

val create :
  ?scan_limit:int ->
  ?pool_capacity:int ->
  ?on_push:(Node.t -> unit) ->
  ?on_pop:(Node.t -> unit) ->
  unit ->
  t
(** [on_push]/[on_pop] observe every instance start/completion (the
    profiler's recursion nesting counters and aggregation hang off these). *)

val now : t -> int
val tick : t -> unit
(** Advance the clock by one instruction. *)

val bulk_tick : t -> int -> unit
(** Advance the clock by [n] instructions at once — equivalent to [n]
    {!tick}s with no intervening observation. Rule (5) probes must still
    happen per pc; {!Rules.on_instr_range} only takes this path across
    pc ranges it has proven free of construct join points. *)

val set_now : t -> int -> unit
(** Jump the clock to an absolute instruction count. Only valid forward
    (time is monotone) and only between events: the register engine's
    event ring stamps each buffered event with the clock it was emitted
    under and restores it here before delivery, which is what lets the
    ring skip replaying instruction ranges that contain no construct
    join point. *)

val depth : t -> int
(** Current stack depth (number of active constructs, the paper's [L]). *)

val top : t -> Node.t option
(** The enclosing construct of the current execution point. *)

val peek : t -> Node.t
(** Option-free {!top} for hot paths that already know the stack is
    non-empty (guard with {!depth}); avoids one minor-heap allocation per
    call, which matters at one call per instruction/memory event.
    @raise Invalid_argument on an empty stack. *)

val push : t -> label:int -> is_func:bool -> Node.t
(** Table I [IDS.push]: acquire a node, stamp [tenter = now], link to the
    current top as parent, push. *)

val pop : t -> Node.t
(** Table I [IDS.pop]: stamp [texit = now], release to the pool, fire
    [on_pop]. @raise Invalid_argument on an empty stack. *)

val pop_through : t -> label:int -> bool
(** Unwind for rule (4) in the presence of irregular control flow: if a
    node with [label] occurs on the stack {e above and including} the
    nearest enclosing function node, pop entries (normally, via {!pop})
    up to and including it and return [true]; otherwise pop nothing and
    return [false]. This closes break/continue-guard conditionals whose
    immediate post-dominator is the loop exit, keeping loop iterations
    siblings (see DESIGN.md, "Constructs and indexing"). *)

val index_of_top : t -> int list
(** The execution index of the current point: labels from the root down
    to the top (paper Fig. 4). *)

val pool_allocated : t -> int
val pool_reused : t -> int

val register_obs : t -> Obs.Registry.t -> unit
(** Register the stack-depth gauge (["tree.depth"], whose high-water mark
    is the paper's [L]) and the construct pool's metrics
    ({!Construct_pool.register_obs}). *)

val stats : t -> string
