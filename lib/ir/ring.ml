(* The event ring: segment-batched hook delivery for the register engine.

   The hot path of a hooked register run is dominated not by dispatch
   but by the hook machinery behind each event — construct indexing,
   shadow lookups, Table II attribution. The ring moves that work out
   of the per-access path: {!Exec} appends each event as three packed
   ints into a flat buffer and the profiler-facing hooks only run when
   the ring drains — at capacity, at a deoptimization hand-off, and at
   run exit (halt or trap).

   Ordering is preserved by construction: the buffer is strictly FIFO
   and the drain replays every event, in order, into the unmodified
   {!Vm.Hooks.t} the caller supplied. Downstream state that events
   themselves drive — the index-tree clock, the construct stack — is
   therefore reconstructed exactly at each replayed event, so a
   consumer cannot distinguish a drained stream from a direct one (the
   differential suite byte-compares profiles to prove it).

   The one batched entry is [Instr_range]: the engine owns a contiguous
   stack-pc segment per IR instruction, so one (lo, hi) event replaces
   [seg_len] per-pc [on_instr] calls. The drain expands it — either
   through the per-pc hook, or through a caller-supplied bulk
   [instr_range] sink (the profiler passes {!Indexing.Rules}'s
   prefix-summed range walk, which skips the per-pc ipdom probe for
   segments containing no construct join).

   Ranges coalesce before they reach the buffer: straight-line code
   retires several event-free segments back to back, and appending each
   one separately would make [Instr_range] the dominant ring traffic.
   The ring instead holds one pending (lo, hi) range; a new range whose
   [lo] continues it extends [hi] in place, and any other append — or a
   drain — flushes the pending range into the buffer first, which
   preserves FIFO order. The merge is exact: [on_instr_range (lo, mid);
   on_instr_range (mid+1, hi)] with nothing between is definitionally
   [on_instr_range (lo, hi)], both in the per-pc expansion and in the
   bulk sink.

   Beyond batching, the stream itself is thinned: every event carries
   the absolute clock (retired-instruction count) it was emitted under,
   and the drain restores that clock — through the [set_time] sink —
   before delivering the event. A consumer that declares its per-pc
   [on_instr] pure clock-keeping outside construct join points (the
   profiler does, by supplying [set_time] and having {!Exec} consult
   {!Indexing.Rules.range_has_target}) therefore never sees ranges for
   join-free segments at all: their only observable effect, the clock
   advance, rides on the next event's stamp. Consumers that supply raw
   hooks get the full range stream and the stamps are redundant.

   Event words, stride 3: word0 = payload lsl 3 lor kind, word1 = arg,
   word2 = emitting clock.

     kind 0  Instr_range   lo                hi
     kind 1  Read          pc                addr
     kind 2  Write         pc                addr
     kind 3  Branch        pc                cid lsl 3 lor bk lsl 1 lor taken
     kind 4  Call          entry pc          fid
     kind 5  Ret           pc                fid
     kind 6  Frame_release base              size

   A range's stamp is the clock {e before} its first instruction (the
   replay ticks through it); every other stamp is the clock at emission.
   All payloads are non-negative and far below 2^59, so the packing is
   lossless on 64-bit ints — except [cid], which is -1 on short-circuit
   branches that belong to no construct; its field is decoded with an
   arithmetic shift so the sign survives the round trip. Telemetry is
   published under [ir.*] names: ring counters are register-engine
   machinery, and the differential telemetry comparison (test_engines)
   filters that prefix out. *)

type t = {
  buf : int array;
  cap : int;  (** capacity in events; a full ring drains itself *)
  mutable n : int;  (** buffered events *)
  mutable p_lo : int;  (** pending coalesced instr range *)
  mutable p_hi : int;  (** [min_int] = no pending range *)
  mutable p_t : int;  (** clock before the pending range's first pc *)
  hooks : Vm.Hooks.t;
  instr_range : lo:int -> hi:int -> unit;
  set_time : int -> unit;
      (** restore the consumer's clock to an event's stamp; [ignore]
          for raw-hook consumers, whose stream carries every range *)
  o_events : Obs.Counter.t;
  o_drains : Obs.Counter.t;
  o_depth : Obs.Histogram.t;  (** events replayed per drain *)
}

let default_capacity = 8192

let branch_kinds = [| Vm.Instr.BrIf; Vm.Instr.BrLoop; Vm.Instr.BrSc |]

let branch_code (k : Vm.Instr.branch_kind) =
  match k with BrIf -> 0 | BrLoop -> 1 | BrSc -> 2

let create ?obs ?(capacity = default_capacity) ?instr_range ?set_time
    (hooks : Vm.Hooks.t) =
  let capacity = max 16 capacity in
  let instr_range =
    match instr_range with
    | Some f -> f
    | None ->
        let on_instr = hooks.Vm.Hooks.on_instr in
        fun ~lo ~hi ->
          for pc = lo to hi do
            on_instr ~pc
          done
  in
  let counter name =
    match obs with
    | Some r -> Obs.Registry.counter r name
    | None -> Obs.Counter.make ()
  in
  {
    buf = Array.make (capacity * 3) 0;
    cap = capacity;
    n = 0;
    p_lo = 0;
    p_hi = min_int;
    p_t = 0;
    hooks;
    instr_range;
    set_time = (match set_time with Some f -> f | None -> ignore);
    o_events = counter "ir.ring_events";
    o_drains = counter "ir.ring_drains";
    o_depth =
      (match obs with
      | Some r -> Obs.Registry.histogram r "ir.ring_depth"
      | None -> Obs.Histogram.make ());
  }

let depth t = t.n + if t.p_hi = min_int then 0 else 1

(* Replay everything buffered, in order, restoring the emitting clock
   before each event whose stamp differs from the clock the replay has
   already established. [t.n] is zeroed before the walk: should a hook
   raise mid-drain, the not-yet-replayed suffix is dropped — exactly
   the events a direct-delivery engine would never have produced past
   the raising one. *)
let drain_buf t =
  if t.n > 0 then begin
    let n = t.n in
    t.n <- 0;
    Obs.Counter.incr t.o_drains;
    Obs.Counter.add t.o_events n;
    Obs.Histogram.observe t.o_depth n;
    let buf = t.buf in
    (* hoisted: one record load per drain, not one per replayed event *)
    let instr_range = t.instr_range in
    let set_time = t.set_time in
    let on_read = t.hooks.Vm.Hooks.on_read in
    let on_write = t.hooks.Vm.Hooks.on_write in
    let on_branch = t.hooks.Vm.Hooks.on_branch in
    let on_call = t.hooks.Vm.Hooks.on_call in
    let on_ret = t.hooks.Vm.Hooks.on_ret in
    let on_frame_release = t.hooks.Vm.Hooks.on_frame_release in
    (* The clock the replay has driven the consumer to so far; a stamp
       mismatch means elided join-free segments sit between this event
       and the previous one. *)
    let cur = ref min_int in
    for i = 0 to n - 1 do
      let w0 = Array.unsafe_get buf (i * 3) in
      let arg = Array.unsafe_get buf ((i * 3) + 1) in
      let tm = Array.unsafe_get buf ((i * 3) + 2) in
      if tm <> !cur then begin
        set_time tm;
        cur := tm
      end;
      let payload = w0 lsr 3 in
      match w0 land 7 with
      | 0 ->
          instr_range ~lo:payload ~hi:arg;
          cur := tm + (arg - payload + 1)
      | 1 -> on_read ~pc:payload ~addr:arg
      | 2 -> on_write ~pc:payload ~addr:arg
      | 3 ->
          on_branch ~pc:payload
            ~kind:(Array.unsafe_get branch_kinds ((arg lsr 1) land 3))
            ~cid:(arg asr 3)
            ~taken:(arg land 1 = 1)
      | 4 -> on_call ~pc:payload ~fid:arg
      | 5 -> on_ret ~pc:payload ~fid:arg
      | _ -> on_frame_release ~base:payload ~size:arg
    done
  end

(* The appenders below hand-inline the three-word store: the build has
   no flambda, so a shared [put] helper would cost a second real call
   on every one of the millions of appends gzip makes. [flush_pending]
   stays a function — on the hot path it does real work (a range
   precedes most events), so its body dwarfs the call. The pending
   range is cleared {e before} its store so a hook exception escaping a
   drain cannot double-deliver it (the run-exit drain would otherwise
   replay it again). *)

let[@inline] flush_pending t =
  if t.p_hi <> min_int then begin
    let plo = t.p_lo and phi = t.p_hi and pt = t.p_t in
    t.p_hi <- min_int;
    if t.n = t.cap then drain_buf t;
    let i = t.n * 3 in
    Array.unsafe_set t.buf i (plo lsl 3);
    Array.unsafe_set t.buf (i + 1) phi;
    Array.unsafe_set t.buf (i + 2) pt;
    t.n <- t.n + 1
  end

(* External drain, used at every transition out of ring delivery (fuel
   deoptimization, run exit): besides replaying the buffer it must
   leave the consumer's clock at [now], the engine's current retired
   count — elided segments may have advanced it past the last buffered
   event's stamp, and whatever runs next (direct-delivery resume, the
   profiler's finisher popping surviving constructs) reads the clock
   directly. *)
let drain t ~now =
  flush_pending t;
  drain_buf t;
  t.set_time now

let instr_range t ~lo ~hi ~t0 =
  if t.p_hi + 1 = lo then t.p_hi <- hi
  else begin
    flush_pending t;
    t.p_lo <- lo;
    t.p_hi <- hi;
    t.p_t <- t0
  end

let read t ~pc ~addr ~tm =
  flush_pending t;
  if t.n = t.cap then drain_buf t;
  let i = t.n * 3 in
  Array.unsafe_set t.buf i ((pc lsl 3) lor 1);
  Array.unsafe_set t.buf (i + 1) addr;
  Array.unsafe_set t.buf (i + 2) tm;
  t.n <- t.n + 1

let write t ~pc ~addr ~tm =
  flush_pending t;
  if t.n = t.cap then drain_buf t;
  let i = t.n * 3 in
  Array.unsafe_set t.buf i ((pc lsl 3) lor 2);
  Array.unsafe_set t.buf (i + 1) addr;
  Array.unsafe_set t.buf (i + 2) tm;
  t.n <- t.n + 1

let branch t ~pc ~kind ~cid ~taken ~tm =
  flush_pending t;
  if t.n = t.cap then drain_buf t;
  let i = t.n * 3 in
  Array.unsafe_set t.buf i ((pc lsl 3) lor 3);
  Array.unsafe_set t.buf (i + 1)
    ((cid lsl 3) lor (branch_code kind lsl 1) lor (if taken then 1 else 0));
  Array.unsafe_set t.buf (i + 2) tm;
  t.n <- t.n + 1

let call t ~pc ~fid ~tm =
  flush_pending t;
  if t.n = t.cap then drain_buf t;
  let i = t.n * 3 in
  Array.unsafe_set t.buf i ((pc lsl 3) lor 4);
  Array.unsafe_set t.buf (i + 1) fid;
  Array.unsafe_set t.buf (i + 2) tm;
  t.n <- t.n + 1

let ret t ~pc ~fid ~tm =
  flush_pending t;
  if t.n = t.cap then drain_buf t;
  let i = t.n * 3 in
  Array.unsafe_set t.buf i ((pc lsl 3) lor 5);
  Array.unsafe_set t.buf (i + 1) fid;
  Array.unsafe_set t.buf (i + 2) tm;
  t.n <- t.n + 1

let frame_release t ~base ~size ~tm =
  flush_pending t;
  if t.n = t.cap then drain_buf t;
  let i = t.n * 3 in
  Array.unsafe_set t.buf i ((base lsl 3) lor 6);
  Array.unsafe_set t.buf (i + 1) size;
  Array.unsafe_set t.buf (i + 2) tm;
  t.n <- t.n + 1
