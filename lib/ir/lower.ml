(* Lowering: stack bytecode -> register IR.

   Each function is lowered independently over its {!Cfa.Cfg} basic
   blocks by symbolic evaluation of the operand stack: every stack slot
   is a descriptor (register, folded constant, or frame ref), so pushes
   and pops become descriptor motion and only instructions with effects
   — memory, control, calls, possible traps — emit segmented IR. At
   block boundaries the symbolic stack is canonicalized into the S
   registers (see {!Instr}), which is what makes control-flow joins
   meet.

   The lowering is a {e per-run} step (like {!Vm.Lower}): the hook
   configuration and prune mask are known, so pruned global loads become
   pure register loads and event flags are baked into the IR.

   Anything the lowering cannot prove consistent — operand-stack depth
   mismatches at joins, depth <> 1 at [Ret], address-taken scalar slots,
   a nonstandard preamble — aborts the whole compilation ([None]); the
   caller falls back to the threaded engine. Compiler-produced programs
   always lower. *)

open Instr

type func_ir = {
  ff : Vm.Program.func_info;
  ir_first : int;  (** global IR pc of the function entry *)
  ir_count : int;
  nvregs : int;
}

type t = {
  prog : Vm.Program.t;
  instrs : Instr.t array;
  entry_ir : int array;  (** fid -> global IR pc *)
  fid_of_ir : int array;  (** IR pc -> fid; -1 for the preamble *)
  funcs : func_ir array;
  n_stack_pcs : int;
}

exception Bail

(* ---- operand-stack effect of one stack instruction --------------------- *)

let stack_effect (funcs : Vm.Program.func_info array) (i : Vm.Instr.t) =
  match i with
  | Const _ | LoadLocal _ | LoadGlobal _ | MakeRefGlobal _ | MakeRefLocal _ ->
      (0, 1)
  | StoreLocal _ | StoreGlobal _ | Pop | Print | Br _ -> (1, 0)
  | LoadIndex -> (2, 1)
  | StoreIndex -> (3, 0)
  | Binop _ -> (2, 1)
  | Unop _ -> (1, 1)
  | Jmp _ -> (0, 0)
  | Dup2 -> (2, 4)
  | Call fid -> (funcs.(fid).nparams, 1)
  | Ret -> (1, 0)
  | Halt -> raise Bail

(* ---- whole-program type analysis ---------------------------------------

   A tiny three-point lattice ('i' < '?', 'r' < '?') over stack entries,
   frame slots, the global scalar cells, the array cells, and function
   returns, iterated to a program-wide fixpoint. In well-typed Mini-C
   everything but refs comes out 'i', which is what lets the emitter
   elide almost every runtime tag check. *)

let lub a b = if a = b then a else ty_unk

type fstate = {
  cfg : Cfa.Cfg.t;
  entry_d : int array;  (** per block; -1 = not yet reached *)
  entry_t : char array array;  (** per block, bottom to top *)
  mutable maxd : int;
}

type tstate = {
  mutable gscalar : char;
  mutable cells : char;
  fret : char array;
  slot_ty : char array array;  (** per fid, per slot *)
  fs : fstate array;
  mutable dirty : bool;
}

let analyze_types (prog : Vm.Program.t) =
  let funcs = prog.funcs in
  let ts =
    {
      gscalar = ty_int;
      cells = ty_int;
      fret = Array.make (Array.length funcs) ty_int;
      slot_ty =
        Array.map
          (fun (f : Vm.Program.func_info) ->
            Array.init f.frame_slots (fun s ->
                if s < f.nparams && f.param_is_array.(s) then ty_ref
                else ty_int))
          funcs;
      fs =
        Array.map
          (fun (f : Vm.Program.func_info) ->
            let cfg = Cfa.Cfg.build prog f in
            let nb = Array.length cfg.Cfa.Cfg.blocks in
            {
              cfg;
              entry_d = Array.make nb (-1);
              entry_t = Array.make nb [||];
              maxd = 0;
            })
          funcs;
      dirty = true;
    }
  in
  let raise_ty cur v = if lub cur v <> cur then (ts.dirty <- true; lub cur v) else cur in
  let step_func (f : Vm.Program.func_info) (fst_ : fstate) =
    let cfg = fst_.cfg in
    let code = prog.code in
    (* seed the entry block *)
    if fst_.entry_d.(cfg.Cfa.Cfg.entry_bid) < 0 then begin
      fst_.entry_d.(cfg.Cfa.Cfg.entry_bid) <- 0;
      fst_.entry_t.(cfg.Cfa.Cfg.entry_bid) <- [||];
      ts.dirty <- true
    end;
    let join bid d (tys : char list) =
      (* [tys] is top-to-bottom; store bottom-to-top *)
      let arr = Array.of_list (List.rev tys) in
      if fst_.entry_d.(bid) < 0 then begin
        fst_.entry_d.(bid) <- d;
        fst_.entry_t.(bid) <- arr;
        ts.dirty <- true
      end
      else begin
        if fst_.entry_d.(bid) <> d then raise Bail;
        let cur = fst_.entry_t.(bid) in
        Array.iteri
          (fun i v ->
            let l = lub cur.(i) v in
            if l <> cur.(i) then begin
              cur.(i) <- l;
              ts.dirty <- true
            end)
          arr
      end
    in
    Array.iter
      (fun (b : Cfa.Cfg.block) ->
        if fst_.entry_d.(b.bid) >= 0 then begin
          let stk = ref (List.rev (Array.to_list fst_.entry_t.(b.bid))) in
          let depth () = List.length !stk in
          if depth () > fst_.maxd then fst_.maxd <- depth ();
          let pop () =
            match !stk with
            | x :: r ->
                stk := r;
                x
            | [] -> raise Bail
          in
          let push v =
            stk := v :: !stk;
            if depth () > fst_.maxd then fst_.maxd <- depth ()
          in
          for pc = b.first to b.last do
            match code.(pc) with
            | Vm.Instr.Const _ -> push ty_int
            | LoadLocal s ->
                if s >= f.frame_slots then raise Bail;
                push ts.slot_ty.(f.fid).(s)
            | StoreLocal s ->
                if s >= f.frame_slots then raise Bail;
                let v = pop () in
                ts.slot_ty.(f.fid).(s) <- raise_ty ts.slot_ty.(f.fid).(s) v
            | LoadGlobal _ -> push ts.gscalar
            | StoreGlobal _ ->
                let v = pop () in
                ts.gscalar <- raise_ty ts.gscalar v
            | MakeRefGlobal _ | MakeRefLocal _ -> push ty_ref
            | LoadIndex ->
                let _ix = pop () and _r = pop () in
                push ts.cells
            | StoreIndex ->
                let v = pop () and _ix = pop () and _r = pop () in
                ts.cells <- raise_ty ts.cells v
            | Binop _ ->
                let _b = pop () and _a = pop () in
                push ty_int
            | Unop _ ->
                let _a = pop () in
                push ty_int
            | Jmp t ->
                join cfg.Cfa.Cfg.block_of_pc.(t - f.entry) (depth ()) !stk
            | Br { target; _ } ->
                let _c = pop () in
                join cfg.Cfa.Cfg.block_of_pc.(target - f.entry) (depth ()) !stk;
                if pc + 1 >= f.code_end then raise Bail;
                join cfg.Cfa.Cfg.block_of_pc.(pc + 1 - f.entry) (depth ()) !stk
            | Dup2 ->
                let y = pop () and x = pop () in
                push x;
                push y;
                push x;
                push y
            | Call fid ->
                let callee = prog.funcs.(fid) in
                (* argument tags flow into the callee's parameter slots;
                   the k-th pop (top first) is parameter [nparams-1-k] *)
                for k = 0 to callee.nparams - 1 do
                  let v = pop () in
                  let s = callee.nparams - 1 - k in
                  ts.slot_ty.(fid).(s) <- raise_ty ts.slot_ty.(fid).(s) v
                done;
                push ts.fret.(fid)
            | Ret ->
                let v = pop () in
                if depth () <> 0 then raise Bail;
                ts.fret.(f.fid) <- raise_ty ts.fret.(f.fid) v
            | Pop -> ignore (pop ())
            | Print -> ignore (pop ())
            | Halt -> raise Bail
          done;
          (* fallthrough edge of a block not ended by control *)
          (match code.(b.last) with
          | Jmp _ | Br _ | Ret | Halt -> ()
          | _ ->
              if b.last + 1 < f.code_end then
                join cfg.Cfa.Cfg.block_of_pc.(b.last + 1 - f.entry) (depth ())
                  !stk
              else raise Bail)
        end)
      cfg.Cfa.Cfg.blocks
  in
  while ts.dirty do
    ts.dirty <- false;
    Array.iter (fun (f : Vm.Program.func_info) -> step_func f ts.fs.(f.fid)) funcs
  done;
  ts

(* ---- stack-level liveness of frame slots -------------------------------

   [live.(pc).(s)] = slot [s] is read (via LoadLocal) before being
   overwritten on some path from [pc]. Used for the deopt flush sets:
   only live slots need their register value synchronized into frame
   memory before handing off to the switch interpreter — dead slots are
   rewritten before the reference could read them. *)

let local_liveness (prog : Vm.Program.t) (f : Vm.Program.func_info)
    (cfg : Cfa.Cfg.t) =
  let code = prog.code in
  let n = f.code_end - f.entry in
  let ns = f.frame_slots in
  let live = Array.init n (fun _ -> Bytes.make ns '\000') in
  let blocks = cfg.Cfa.Cfg.blocks in
  let changed = ref true in
  while !changed do
    changed := false;
    for bi = Array.length blocks - 1 downto 0 do
      let b = blocks.(bi) in
      (* live-out = union of successors' live-in *)
      let out = Bytes.make ns '\000' in
      List.iter
        (fun s ->
          let si = blocks.(s).Cfa.Cfg.first - f.entry in
          for k = 0 to ns - 1 do
            if Bytes.get live.(si) k = '\001' then Bytes.set out k '\001'
          done)
        b.succs;
      let cur = ref out in
      for pc = b.last downto b.first do
        let nxt = Bytes.copy !cur in
        (match code.(pc) with
        | Vm.Instr.LoadLocal s -> Bytes.set nxt s '\001'
        | StoreLocal s -> Bytes.set nxt s '\000'
        | _ -> ());
        let idx = pc - f.entry in
        if not (Bytes.equal nxt live.(idx)) then begin
          Bytes.blit nxt 0 live.(idx) 0 ns;
          changed := true
        end;
        cur := live.(idx)
      done
    done
  done;
  live

(* ---- per-function emission --------------------------------------------- *)

type femit = {
  mutable out : Instr.t list;  (** reversed *)
  mutable ntmp : int;
  mutable block_start : int array;  (** local bid -> local IR index; -1 *)
  mutable count : int;
}

let lower_function (prog : Vm.Program.t) (ts : tstate)
    (f : Vm.Program.func_info) ~pruned ~hooked =
  let code = prog.code in
  let fst_ = ts.fs.(f.fid) in
  let cfg = fst_.cfg in
  (* scalar slots must not be address-taken via a local array ref *)
  let refcov = Array.make f.frame_slots false in
  for pc = f.entry to f.code_end - 1 do
    match code.(pc) with
    | Vm.Instr.MakeRefLocal (off, len) ->
        for s = off to min (off + len) f.frame_slots - 1 do
          refcov.(s) <- true
        done
    | _ -> ()
  done;
  for pc = f.entry to f.code_end - 1 do
    match code.(pc) with
    | Vm.Instr.LoadLocal s | StoreLocal s ->
        if s < f.frame_slots && refcov.(s) then raise Bail
    | _ -> ()
  done;
  let live = local_liveness prog f cfg in
  let flush_at pc =
    let idx = pc - f.entry in
    let acc = ref [] in
    for s = f.frame_slots - 1 downto 0 do
      if (not refcov.(s)) && Bytes.get live.(idx) s = '\001' then
        acc := (s, s, ts.slot_ty.(f.fid).(s)) :: !acc
    done;
    Array.of_list !acc
  in
  let sbase = f.frame_slots in
  let em =
    {
      out = [];
      ntmp = sbase + fst_.maxd;
      block_start = Array.make (Array.length cfg.Cfa.Cfg.blocks) (-1);
      count = 0;
    }
  in
  let newtmp () =
    let t = em.ntmp in
    em.ntmp <- t + 1;
    t
  in
  let emit i =
    em.out <- i :: em.out;
    em.count <- em.count + 1
  in
  let seg_counts lo hi =
    let r = ref 0 and w = ref 0 in
    for q = lo to hi do
      match code.(q) with
      | Vm.Instr.LoadLocal _ | LoadGlobal _ | LoadIndex -> incr r
      | StoreLocal _ | StoreGlobal _ | StoreIndex -> incr w
      | _ -> ()
    done;
    (!r, !w)
  in
  let bid_of_pc pc = cfg.Cfa.Cfg.block_of_pc.(pc - f.entry) in
  Array.iter
    (fun (b : Cfa.Cfg.block) ->
      if fst_.entry_d.(b.bid) >= 0 then begin
        em.block_start.(b.bid) <- em.count;
        (* symbolic stack, head = top *)
        let entry =
          List.rev
            (Array.to_list
               (Array.mapi
                  (fun i t -> (Reg (sbase + i), t))
                  fst_.entry_t.(b.bid)))
        in
        let sym = ref entry in
        let snapshot = ref entry in
        let seg_lo = ref b.first in
        let pop () =
          match !sym with
          | x :: r ->
              sym := r;
              x
          | [] -> raise Bail
        in
        let push o = sym := o :: !sym in
        let emit_pure kind ~epc =
          emit
            {
              kind;
              epc;
              seg_lo = 1;
              seg_hi = 0;
              moves = [||];
              d_reads = 0;
              d_writes = 0;
              deopt = None;
            }
        in
        let mk_deopt lo =
          let entries = Array.of_list (List.rev !snapshot) in
          {
            d_pc = lo;
            d_stack = Array.map fst entries;
            d_tags = String.init (Array.length entries) (fun i -> snd entries.(i));
            d_flush = flush_at lo;
          }
        in
        let emit_seg ?(moves = [||]) kind ~pc =
          let lo = !seg_lo in
          let dr, dw = seg_counts lo pc in
          emit
            {
              kind;
              epc = pc;
              seg_lo = lo;
              seg_hi = pc;
              moves;
              d_reads = dr;
              d_writes = dw;
              deopt = Some (mk_deopt lo);
            };
          seg_lo := pc + 1;
          snapshot := !sym
        in
        let materialize s ~pc =
          if List.exists (fun (o, _) -> o = Reg s) !sym then begin
            let t = newtmp () in
            let ty = ts.slot_ty.(f.fid).(s) in
            emit_pure (Mov { dst = t; src = Reg s; ty }) ~epc:pc;
            sym :=
              List.map
                (fun (o, tyo) -> if o = Reg s then (Reg t, tyo) else (o, tyo))
                !sym
          end
        in
        let canon_moves () =
          let arr = Array.of_list (List.rev !sym) in
          let ms = ref [] in
          Array.iteri
            (fun i (o, ty) ->
              if o <> Reg (sbase + i) then
                ms := { m_dst = sbase + i; m_src = o; m_ty = ty } :: !ms)
            arr;
          Array.of_list (List.rev !ms)
        in
        let safe_binop (op : Minic.Ast.binop) =
          match op with
          | Div | Mod | Shl | Shr | LogAnd | LogOr -> false
          | _ -> true
        in
        let fold_binop (op : Minic.Ast.binop) a b =
          match op with
          | Add -> a + b
          | Sub -> a - b
          | Mul -> a * b
          | BitAnd -> a land b
          | BitOr -> a lor b
          | BitXor -> a lxor b
          | Lt -> if a < b then 1 else 0
          | Le -> if a <= b then 1 else 0
          | Gt -> if a > b then 1 else 0
          | Ge -> if a >= b then 1 else 0
          | Eq -> if a = b then 1 else 0
          | Ne -> if a <> b then 1 else 0
          | Div | Mod | Shl | Shr | LogAnd | LogOr -> assert false
        in
        for pc = b.first to b.last do
          match code.(pc) with
          | Vm.Instr.Const n -> push (Imm n, ty_int)
          | LoadLocal s -> push (Reg s, ts.slot_ty.(f.fid).(s))
          | StoreLocal s ->
              materialize s ~pc;
              let v, vty = pop () in
              emit_seg (Mov { dst = s; src = v; ty = vty }) ~pc
          | LoadGlobal addr ->
              let t = newtmp () in
              let gty = ts.gscalar in
              if hooked && not (pruned pc) then begin
                push (Reg t, gty);
                emit_seg (LoadG { dst = t; addr; ev = true }) ~pc
              end
              else begin
                emit_pure (LoadG { dst = t; addr; ev = false }) ~epc:pc;
                push (Reg t, gty)
              end
          | StoreGlobal addr ->
              let v, vty = pop () in
              emit_seg
                (StoreG { addr; v; tv = vty; ev = hooked && not (pruned pc) })
                ~pc
          | MakeRefGlobal (base, len) ->
              push (Imm (Vm.Vmstate.pack_ref base len), ty_ref)
          | MakeRefLocal (off, len) -> push (RefL (off, len), ty_ref)
          | LoadIndex ->
              let ix, ixty = pop () in
              let r, rty = pop () in
              let t = newtmp () in
              push (Reg t, ts.cells);
              emit_seg
                (LoadIx
                   {
                     dst = t;
                     r;
                     ix;
                     tr = rty;
                     tix = ixty;
                     ev = hooked && not (pruned pc);
                   })
                ~pc
          | StoreIndex ->
              let v, vty = pop () in
              let ix, ixty = pop () in
              let r, rty = pop () in
              emit_seg
                (StoreIx
                   {
                     r;
                     ix;
                     v;
                     tr = rty;
                     tix = ixty;
                     tv = vty;
                     ev = hooked && not (pruned pc);
                   })
                ~pc
          | Binop op ->
              let bo, bty = pop () in
              let ao, aty = pop () in
              if safe_binop op && aty = ty_int && bty = ty_int then
                match (ao, bo) with
                | Imm x, Imm y -> push (Imm (fold_binop op x y), ty_int)
                | _ ->
                    let t = newtmp () in
                    emit_pure
                      (Bin
                         { dst = t; op; a = ao; b = bo; ta = ty_int; tb = ty_int })
                      ~epc:pc;
                    push (Reg t, ty_int)
              else begin
                let t = newtmp () in
                push (Reg t, ty_int);
                emit_seg (Bin { dst = t; op; a = ao; b = bo; ta = aty; tb = bty }) ~pc
              end
          | Unop op ->
              let ao, aty = pop () in
              if aty = ty_int then
                match ao with
                | Imm x -> push (Imm (Vm.Vmstate.eval_unop op x), ty_int)
                | _ ->
                    let t = newtmp () in
                    emit_pure (Un { dst = t; op; a = ao; ta = ty_int }) ~epc:pc;
                    push (Reg t, ty_int)
              else begin
                let t = newtmp () in
                push (Reg t, ty_int);
                emit_seg (Un { dst = t; op; a = ao; ta = aty }) ~pc
              end
          | Jmp target ->
              let moves = canon_moves () in
              emit_seg ~moves (JmpI (bid_of_pc target)) ~pc
          | Br { target; kind; cid } ->
              let c, cty = pop () in
              let moves = canon_moves () in
              emit_seg ~moves
                (BrI { c; tc = cty; target = bid_of_pc target; bkind = kind; cid })
                ~pc
          | Dup2 -> (
              match !sym with
              | y :: x :: rest -> sym := y :: x :: y :: x :: rest
              | _ -> raise Bail)
          | Call fid ->
              let callee = prog.funcs.(fid) in
              let rec take n acc =
                if n = 0 then acc
                else
                  let x = pop () in
                  take (n - 1) (x :: acc)
              in
              (* head of [sym] is the last argument; [take] rebuilds
                 first-param-first order *)
              let args = Array.of_list (take callee.nparams []) in
              let resume = Array.of_list (List.rev !sym) in
              let dst = newtmp () in
              let ci =
                {
                  ci_fid = fid;
                  ci_args = Array.map fst args;
                  ci_atags =
                    String.init (Array.length args) (fun i -> snd args.(i));
                  ci_dst = dst;
                  ci_ret_pc = pc + 1;
                  ci_resume = Array.map fst resume;
                  ci_rtags =
                    String.init (Array.length resume) (fun i -> snd resume.(i));
                  ci_rflush = flush_at (pc + 1);
                }
              in
              push (Reg dst, ts.fret.(fid));
              emit_seg (CallI ci) ~pc
          | Ret ->
              let v, vty = pop () in
              emit_seg (RetI { v; vt = vty }) ~pc
          | Pop -> ignore (pop ())
          | Print ->
              let v, vty = pop () in
              emit_seg (PrintI { v; tv = vty }) ~pc
          | Halt -> raise Bail
        done;
        (* block not ended by a control transfer: cover any trailing pure
           pcs and canonicalize for the fallthrough successor *)
        (match code.(b.last) with
        | Jmp _ | Br _ | Ret | Halt -> ()
        | _ ->
            let moves = canon_moves () in
            if !seg_lo <= b.last then emit_seg ~moves EndB ~pc:b.last
            else if Array.length moves > 0 then
              emit
                {
                  kind = EndB;
                  epc = -1;
                  seg_lo = 1;
                  seg_hi = 0;
                  moves;
                  d_reads = 0;
                  d_writes = 0;
                  deopt = None;
                })
      end)
    cfg.Cfa.Cfg.blocks;
  let instrs = Array.of_list (List.rev em.out) in
  (instrs, em.block_start, em.ntmp)

(* ---- program assembly --------------------------------------------------- *)

let lower ~hooked ~pruned (prog : Vm.Program.t) =
  try
    let funcs = prog.funcs in
    if Array.length funcs = 0 then raise Bail;
    (match (prog.code.(0), prog.code.(1)) with
    | Vm.Instr.Call fid, Vm.Instr.Halt when fid = prog.main_fid -> ()
    | _ -> raise Bail);
    let ts = analyze_types prog in
    let lowered =
      Array.map (fun f -> lower_function prog ts f ~pruned ~hooked) funcs
    in
    let entry_ir = Array.make (Array.length funcs) 0 in
    let base = ref 2 in
    Array.iteri
      (fun fid (instrs, _, _) ->
        entry_ir.(fid) <- !base;
        base := !base + Array.length instrs)
      lowered;
    let total = !base in
    let main = prog.main_fid in
    let preamble_call =
      {
        kind =
          CallI
            {
              ci_fid = main;
              ci_args = [||];
              ci_atags = "";
              ci_dst = 0;
              ci_ret_pc = 1;
              ci_resume = [||];
              ci_rtags = "";
              ci_rflush = [||];
            };
        epc = 0;
        seg_lo = 0;
        seg_hi = 0;
        moves = [||];
        d_reads = 0;
        d_writes = 0;
        deopt = Some { d_pc = 0; d_stack = [||]; d_tags = ""; d_flush = [||] };
      }
    in
    let preamble_halt =
      {
        kind = HaltI { v = Reg 0; tv = ts.fret.(main) };
        epc = 1;
        seg_lo = 1;
        seg_hi = 1;
        moves = [||];
        d_reads = 0;
        d_writes = 0;
        deopt =
          Some
            {
              d_pc = 1;
              d_stack = [| Reg 0 |];
              d_tags = String.make 1 ts.fret.(main);
              d_flush = [||];
            };
      }
    in
    let all = Array.make total preamble_call in
    all.(1) <- preamble_halt;
    let fid_of_ir = Array.make total (-1) in
    Array.iteri
      (fun fid (instrs, block_start, _) ->
        let b0 = entry_ir.(fid) in
        let patch_target bid =
          if bid < 0 || block_start.(bid) < 0 then raise Bail;
          b0 + block_start.(bid)
        in
        Array.iteri
          (fun i ins ->
            let ins =
              match ins.kind with
              | JmpI bid -> { ins with kind = JmpI (patch_target bid) }
              | BrI br -> { ins with kind = BrI { br with target = patch_target br.target } }
              | _ -> ins
            in
            all.(b0 + i) <- ins;
            fid_of_ir.(b0 + i) <- fid)
          instrs)
      lowered;
    let fis =
      Array.mapi
        (fun fid (f : Vm.Program.func_info) ->
          let instrs, _, ntmp = lowered.(fid) in
          {
            ff = f;
            ir_first = entry_ir.(fid);
            ir_count = Array.length instrs;
            nvregs = ntmp;
          })
        funcs
    in
    Some
      {
        prog;
        instrs = all;
        entry_ir;
        fid_of_ir;
        funcs = fis;
        n_stack_pcs = Array.length prog.code;
      }
  with Bail -> None
