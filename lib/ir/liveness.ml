(* Virtual-register liveness over a function's IR slice.

   Instruction-granular backward dataflow: successors are derived
   directly from the terminators (everything else falls through), and
   the deoptimization metadata counts as uses — a register named by a
   deopt snapshot, flush set, or call suspension record must survive to
   that instruction even if no fast-path instruction reads it, because
   the hand-off to the switch interpreter reads it. *)

open Instr

type t = {
  nvregs : int;
  live_in : Bytes.t array;  (** per local IR index, one byte per vreg *)
  live_out : Bytes.t array;
  uses : int list array;
  defs : int list array;
}

let reg_uses acc = function Reg r -> r :: acc | Imm _ | RefL _ -> acc

let instr_uses (ins : Instr.t) =
  let acc = ref [] in
  let op o = acc := reg_uses !acc o in
  (match ins.kind with
  | Mov { src; _ } -> op src
  | Bin { a; b; _ } ->
      op a;
      op b
  | Un { a; _ } -> op a
  | LoadG _ -> ()
  | StoreG { v; _ } -> op v
  | LoadIx { r; ix; _ } ->
      op r;
      op ix
  | StoreIx { r; ix; v; _ } ->
      op r;
      op ix;
      op v
  | PrintI { v; _ } -> op v
  | JmpI _ | EndB -> ()
  | BrI { c; _ } -> op c
  | CallI ci ->
      Array.iter op ci.ci_args;
      Array.iter op ci.ci_resume;
      Array.iter (fun (_, vr, _) -> acc := vr :: !acc) ci.ci_rflush
  | RetI { v; _ } -> op v
  | HaltI { v; _ } -> op v);
  Array.iter (fun m -> op m.m_src) ins.moves;
  (match ins.deopt with
  | Some d ->
      Array.iter op d.d_stack;
      Array.iter (fun (_, vr, _) -> acc := vr :: !acc) d.d_flush
  | None -> ());
  !acc

let instr_defs (ins : Instr.t) =
  let acc = ref [] in
  (match ins.kind with
  | Mov { dst; _ }
  | Bin { dst; _ }
  | Un { dst; _ }
  | LoadG { dst; _ }
  | LoadIx { dst; _ } ->
      acc := dst :: !acc
  | CallI ci -> acc := ci.ci_dst :: !acc
  | StoreG _ | StoreIx _ | PrintI _ | JmpI _ | BrI _ | RetI _ | HaltI _ | EndB
    ->
      ());
  Array.iter (fun m -> acc := m.m_dst :: !acc) ins.moves;
  !acc

(* Local successors of the instruction at local index [li]; [-1] for the
   edge out of the function (none: every path ends at [RetI]). *)
let succs (ins : Instr.t) ~base ~count li =
  match ins.kind with
  | JmpI t -> [ t - base ]
  | BrI { target; _ } ->
      let ft = li + 1 in
      if ft < count && ft <> target - base then [ target - base; ft ]
      else [ target - base ]
  | RetI _ | HaltI _ -> []
  | _ -> if li + 1 < count then [ li + 1 ] else []

let analyze (lw : Lower.t) (fi : Lower.func_ir) =
  let base = fi.ir_first and count = fi.ir_count in
  let n = fi.nvregs in
  let uses = Array.make count [] and defs = Array.make count [] in
  let succ = Array.make count [] in
  for li = 0 to count - 1 do
    let ins = lw.instrs.(base + li) in
    uses.(li) <- instr_uses ins;
    defs.(li) <- instr_defs ins;
    succ.(li) <- succs ins ~base ~count li
  done;
  let live_in = Array.init count (fun _ -> Bytes.make n '\000') in
  let live_out = Array.init count (fun _ -> Bytes.make n '\000') in
  let changed = ref true in
  while !changed do
    changed := false;
    for li = count - 1 downto 0 do
      let out = live_out.(li) in
      List.iter
        (fun s ->
          let si = live_in.(s) in
          for v = 0 to n - 1 do
            if
              Bytes.unsafe_get si v = '\001'
              && Bytes.unsafe_get out v <> '\001'
            then begin
              Bytes.unsafe_set out v '\001';
              changed := true
            end
          done)
        succ.(li);
      let inb = live_in.(li) in
      (* live_in = uses ∪ (live_out \ defs) *)
      let tmp = Bytes.copy out in
      List.iter (fun d -> if d < n then Bytes.set tmp d '\000') defs.(li);
      List.iter (fun u -> if u < n then Bytes.set tmp u '\001') uses.(li);
      if not (Bytes.equal tmp inb) then begin
        Bytes.blit tmp 0 inb 0 n;
        changed := true
      end
    done
  done;
  { nvregs = n; live_in; live_out; uses; defs }
