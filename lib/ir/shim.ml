(* The IR <-> event-pc shim.

   The static dependence layer (lib/static) reasons exclusively in
   original stack pcs — prune verdicts, distance bounds and profile
   sanitizing are all keyed by event pc. The register backend keeps
   that contract without lib/static knowing the IR exists: {!Lower}
   consults the prune mask at the original pc of each memory
   instruction, and everything observable (hook events, traps, disasm
   source lines) is reported through the mapping below. *)

(* Stack pc an IR instruction maps back to: the pc whose events it
   fires ([epc]), or [None] for synthetic canonicalization code. *)
let event_pc (lw : Lower.t) ir_pc =
  let i = lw.instrs.(ir_pc) in
  if i.Instr.epc >= 0 then Some i.Instr.epc else None

(* The contiguous range of stack pcs whose instruction-clock ticks the
   IR instruction owns; [None] for pure instructions. *)
let segment (lw : Lower.t) ir_pc =
  let i = lw.instrs.(ir_pc) in
  if Instr.segmented i then Some (i.Instr.seg_lo, i.Instr.seg_hi) else None

(* Source line for disassembly, via the program's pc->line table. *)
let line (lw : Lower.t) ir_pc =
  match event_pc lw ir_pc with
  | Some pc -> Vm.Program.line_of_pc lw.prog pc
  | None -> 0

(* Reverse direction: the IR instruction whose segment covers a stack
   pc (the one that fires its [on_instr]), or [None] if the program
   point was folded away into a non-covering position. *)
let ir_of_event_pc (lw : Lower.t) pc =
  let n = Array.length lw.instrs in
  let rec scan i =
    if i >= n then None
    else
      let ins = lw.instrs.(i) in
      if Instr.segmented ins && ins.Instr.seg_lo <= pc && pc <= ins.Instr.seg_hi
      then Some i
      else scan (i + 1)
  in
  scan 0
