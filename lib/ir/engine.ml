(* Engine dispatch covering all three backends.

   [Vm.Machine] cannot dispatch to the register backend (lib/ir sits
   above lib/vm), so anything that accepts [--engine] goes through
   here: {!Vm.Machine.Switch} and {!Vm.Machine.Threaded} fall through
   to [Vm.Machine.exec], {!Vm.Machine.Register} runs {!Exec}.

   [regalloc] (default true) disables graph coloring when false — the
   identity-mapped ablation measured in the bench. [ring] (default
   true) batches hook delivery through {!Ring}; [instr_range] is the
   optional bulk [on_instr] sink the ring drain uses for segment
   events. [obs] publishes the [ir.*] gauges into the given registry.
   All are accepted (and ignored) for the other engines so callers can
   pass them unconditionally. *)

let exec ?(engine = Vm.Machine.Threaded) ~hooked ?trace_locals ?prune ?regalloc
    ?ring ?instr_range ?range_has_target ?set_time ?obs (hooks : Vm.Hooks.t)
    ?fuel ?max_depth (prog : Vm.Program.t) =
  match engine with
  | Vm.Machine.Register ->
      Exec.exec ~hooked ?trace_locals ?prune ?regalloc ?ring ?instr_range
        ?range_has_target ?set_time ?obs hooks ?fuel ?max_depth prog
  | (Vm.Machine.Switch | Vm.Machine.Threaded) as e ->
      Vm.Machine.exec ~engine:e ~hooked ?trace_locals ?prune hooks ?fuel
        ?max_depth prog

let run ?engine ?regalloc ?fuel ?max_depth prog =
  exec ?engine ~hooked:false ?regalloc Vm.Hooks.noop ?fuel ?max_depth prog

let run_hooked ?engine ?trace_locals ?prune ?regalloc ?ring ?instr_range
    ?range_has_target ?set_time ?obs ?fuel ?max_depth hooks prog =
  exec ?engine ~hooked:true ?trace_locals ?prune ?regalloc ?ring ?instr_range
    ?range_has_target ?set_time ?obs hooks ?fuel ?max_depth prog
