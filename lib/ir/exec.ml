(* Register-IR execution engine.

   Compiled closures over register windows: each function activation
   owns a window of physical slots in one flat register stack
   ([regs]), disjoint from the caller's, so calls are window bumps and
   parallel to the frame-memory machinery of {!Vm.Vmstate} — frame
   memory is still really allocated and zeroed (the memory high-water
   metric is identical), but locals live in registers and frame memory
   is only synchronized on deoptimization.

   Fuel exhaustion mid-segment deoptimizes: the operand stack is
   rebuilt bottom-up from the per-frame suspension records, live
   locals are flushed to frame memory, and {!Vm.Machine.switch_resume}
   replays from the segment's first pc — so "out of fuel" (or any
   nearer trap) fires at exactly the reference pc with the reference
   event stream.

   Tag bytes ([rtg]) are only maintained when the lowering could not
   prove every tag ([wt]); in well-typed programs the whole tag plane
   is dead code. *)

open Instr
module VS = Vm.Vmstate

(* A resolved stack frame image: how to rebuild one frame's portion of
   the reference operand stack and flush its live locals. Operands are
   pre-resolved to window slots. *)
type rop = RImm of int | RSlot of int | RRefL of int * int

type rframe = {
  r_ops : rop array;
  r_tags : string;
  r_flush_mem : int array;
  r_flush_slot : int array;
  r_flush_tag : string;
}

let empty_frame =
  { r_ops = [||]; r_tags = ""; r_flush_mem = [||]; r_flush_slot = [||]; r_flush_tag = "" }

type rdeopt = { rd_pc : int; rd_frame : rframe }

type xstate = {
  st : VS.state;
  mutable regs : int array;
  mutable rtg : Bytes.t;
  mutable rb : int;  (** current window base *)
  mutable rtop : int;  (** one past the current window *)
  mutable c_rb : int array;  (** per call depth: saved window base *)
  mutable c_ret_ir : int array;  (** return IR pc *)
  mutable c_dst : int array;  (** caller-window-relative result slot *)
  mutable c_sus : rframe array;  (** caller suspension record *)
}

let resolve_ops (al : Regalloc.alloc) ops =
  Array.map
    (function
      | Reg r -> RSlot al.map.(r)
      | Imm n -> RImm n
      | RefL (o, l) -> RRefL (o, l))
    ops

let resolve_frame (al : Regalloc.alloc) ops tags flush =
  {
    r_ops = resolve_ops al ops;
    r_tags = tags;
    r_flush_mem = Array.map (fun (s, _, _) -> s) flush;
    r_flush_slot = Array.map (fun (_, v, _) -> al.map.(v)) flush;
    r_flush_tag =
      String.init (Array.length flush) (fun i ->
          let _, _, t = flush.(i) in
          t);
  }

(* Does any static tag come out unknown? If not, the runtime tag plane
   is never read and all [rtg] maintenance is skipped. *)
let needs_tags (lw : Lower.t) =
  let unk_s s = String.contains s ty_unk in
  let unk_fl = Array.exists (fun (_, _, t) -> t = ty_unk) in
  Array.exists
    (fun (ins : Instr.t) ->
      Array.exists (fun m -> m.m_ty = ty_unk) ins.moves
      || (match ins.deopt with
         | Some d -> unk_s d.d_tags || unk_fl d.d_flush
         | None -> false)
      ||
      match ins.kind with
      | Mov { ty; _ } -> ty = ty_unk
      | Bin { ta; tb; _ } -> ta = ty_unk || tb = ty_unk
      | Un { ta; _ } -> ta = ty_unk
      | StoreG { tv; _ } -> tv = ty_unk
      | LoadIx { tr; tix; _ } -> tr = ty_unk || tix = ty_unk
      | StoreIx { tr; tix; tv; _ } ->
          tr = ty_unk || tix = ty_unk || tv = ty_unk
      | PrintI { tv; _ } -> tv = ty_unk
      | BrI { tc; _ } -> tc = ty_unk
      | CallI ci -> unk_s ci.ci_atags || unk_s ci.ci_rtags || unk_fl ci.ci_rflush
      | RetI { vt; _ } -> vt = ty_unk
      | HaltI { tv; _ } -> tv = ty_unk
      | LoadG _ | JmpI _ | EndB -> false)
    lw.instrs

let binfn (op : Minic.Ast.binop) : int -> int -> int =
  match op with
  | Add -> ( + )
  | Sub -> ( - )
  | Mul -> ( * )
  | BitAnd -> ( land )
  | BitOr -> ( lor )
  | BitXor -> ( lxor )
  | Lt -> fun a b -> if a < b then 1 else 0
  | Le -> fun a b -> if a <= b then 1 else 0
  | Gt -> fun a b -> if a > b then 1 else 0
  | Ge -> fun a b -> if a >= b then 1 else 0
  | Eq -> fun a b -> if a = b then 1 else 0
  | Ne -> fun a b -> if a <> b then 1 else 0
  | Div | Mod | Shl | Shr | LogAnd | LogOr -> assert false

let run_ir ~hooked ~trace_locals ?prune ~regalloc ~ring ?instr_range
    ?range_has_target ?set_time ?obs (hooks : Vm.Hooks.t) ?fuel ?max_depth
    (lw : Lower.t) =
  let prog = lw.prog in
  let st = VS.create ?max_depth prog in
  let fuel = match fuel with Some f -> f | None -> max_int in
  (* Event delivery: with the ring on, every hook call site below
     appends packed ints and the real hooks only run at drain points
     (capacity, deoptimization, run exit). With it off, the sinks are
     the hooks themselves — the reference delivery discipline. All
     sinks are resolved once here so the compiled closures carry no
     per-event mode branch. Ring events are stamped with the emitting
     clock ([st.instructions]); when the caller also supplies
     [range_has_target] and [set_time] (the profiler does), segments
     without a construct join never enter the ring at all — the drain
     restores the clock from the stamps instead. *)
  let rg =
    if hooked && ring then Some (Ring.create ?obs ?instr_range ?set_time hooks)
    else None
  in
  let flush_ring =
    match rg with
    | Some r -> fun () -> Ring.drain r ~now:st.instructions
    | None -> fun () -> ()
  in
  let ev_read =
    match rg with
    | Some r -> fun ~pc ~addr -> Ring.read r ~pc ~addr ~tm:st.instructions
    | None -> hooks.on_read
  in
  let ev_write =
    match rg with
    | Some r -> fun ~pc ~addr -> Ring.write r ~pc ~addr ~tm:st.instructions
    | None -> hooks.on_write
  in
  let ev_branch =
    match rg with
    | Some r ->
        fun ~pc ~kind ~cid ~taken ->
          Ring.branch r ~pc ~kind ~cid ~taken ~tm:st.instructions
    | None -> hooks.on_branch
  in
  let ev_call =
    match rg with
    | Some r -> fun ~pc ~fid -> Ring.call r ~pc ~fid ~tm:st.instructions
    | None -> hooks.on_call
  in
  let ev_ret =
    match rg with
    | Some r -> fun ~pc ~fid -> Ring.ret r ~pc ~fid ~tm:st.instructions
    | None -> hooks.on_ret
  in
  let ev_release =
    match rg with
    | Some r ->
        fun ~base ~size -> Ring.frame_release r ~base ~size ~tm:st.instructions
    | None -> hooks.on_frame_release
  in
  let ev_range =
    match rg with
    | Some r ->
        (* [Ring.instr_range] open-coded: this fires once per retired
           IR segment that must appear in the stream — without flambda
           the closure would pay a second real call just to reach a
           compare-and-stores body. Both no-call outcomes (extend the
           pending range, or start one when none is pending) stay in
           the closure. [t0] is the clock before the segment's first
           pc; the extend case keeps the pending range's own start. *)
        fun lo hi t0 ->
          if r.Ring.p_hi + 1 = lo then r.Ring.p_hi <- hi
          else begin
            if r.Ring.p_hi <> min_int then Ring.flush_pending r;
            r.Ring.p_lo <- lo;
            r.Ring.p_hi <- hi;
            r.Ring.p_t <- t0
          end
    | None ->
        let on_instr = hooks.on_instr in
        fun lo hi _t0 ->
          for q = lo to hi do
            on_instr ~pc:q
          done
  in
  (* Must a segment appear in the event stream? Without the consumer
     contract (ring + [range_has_target] + [set_time]) every segment
     must; with it, only segments holding a construct join point — the
     rest contribute nothing but a clock advance, which rides on the
     stamps. Decided once per IR instruction at closure-build time. *)
  let must_emit_range =
    match (rg, range_has_target) with
    | Some _, Some f -> f
    | _ -> fun ~lo:_ ~hi:_ -> true
  in
  let allocs =
    Array.map (fun fi -> Regalloc.allocate ~identity:(not regalloc) lw fi) lw.funcs
  in
  let pre_alloc = Regalloc.identity 1 in
  let wt = needs_tags lw in
  (match obs with
  | Some reg ->
      Obs.Gauge.set
        (Obs.Registry.gauge reg "ir.instrs_per_stack_instr")
        (Array.length lw.instrs * 1000 / max 1 lw.n_stack_pcs);
      Obs.Gauge.set
        (Obs.Registry.gauge reg "ir.spills")
        (Array.fold_left (fun a (al : Regalloc.alloc) -> a + al.spills) 0 allocs)
  | None -> ());
  let xs =
    {
      st;
      regs = Array.make 1024 0;
      rtg = Bytes.make 1024 VS.tag_int;
      rb = 0;
      rtop = 1;
      c_rb = Array.make 64 0;
      c_ret_ir = Array.make 64 0;
      c_dst = Array.make 64 0;
      c_sus = Array.make 64 empty_frame;
    }
  in
  let ensure_regs need =
    if need > Array.length xs.regs then begin
      let nn = max need (2 * Array.length xs.regs) in
      let nr = Array.make nn 0 in
      Array.blit xs.regs 0 nr 0 (Array.length xs.regs);
      xs.regs <- nr;
      let nt = Bytes.make nn VS.tag_int in
      Bytes.blit xs.rtg 0 nt 0 (Bytes.length xs.rtg);
      xs.rtg <- nt
    end
  in
  let grow_crec () =
    let n = Array.length xs.c_rb in
    let nn = n * 2 in
    let g a =
      let b = Array.make nn 0 in
      Array.blit a 0 b 0 n;
      b
    in
    xs.c_rb <- g xs.c_rb;
    xs.c_ret_ir <- g xs.c_ret_ir;
    xs.c_dst <- g xs.c_dst;
    let s = Array.make nn empty_frame in
    Array.blit xs.c_sus 0 s 0 n;
    xs.c_sus <- s
  in
  let vtag tc ws =
    if tc = ty_unk then Bytes.get xs.rtg ws
    else if tc = ty_ref then VS.tag_ref
    else VS.tag_int
  in
  let restore_frame wb fb (fr : rframe) =
    for k = 0 to Array.length fr.r_flush_mem - 1 do
      let addr = fb + fr.r_flush_mem.(k) in
      let ws = wb + fr.r_flush_slot.(k) in
      st.mem.(addr) <- xs.regs.(ws);
      Bytes.set st.mem_tag addr (vtag fr.r_flush_tag.[k] ws)
    done;
    Array.iteri
      (fun i op ->
        let tc = fr.r_tags.[i] in
        match op with
        | RImm n ->
            VS.push st n (if tc = ty_ref then VS.tag_ref else VS.tag_int)
        | RSlot s' ->
            let ws = wb + s' in
            VS.push st xs.regs.(ws) (vtag tc ws)
        | RRefL (off, len) -> VS.push st (VS.pack_ref (fb + off) len) VS.tag_ref)
      fr.r_ops
  in
  let do_deopt (rd : rdeopt) : int =
    (* Flush pending ring events BEFORE reconstructing stack state: the
       hand-off resumes the switch interpreter, which delivers its own
       events directly — anything still buffered here is owed to the
       stream first, or the resume's events would overtake it. *)
    flush_ring ();
    st.sp <- 0;
    for j = 0 to st.depth - 1 do
      restore_frame xs.c_rb.(j) st.call_base.(j) xs.c_sus.(j)
    done;
    restore_frame xs.rb st.frame_base rd.rd_frame;
    let v =
      Vm.Machine.switch_resume ~hooked ~trace_locals ?prune hooks ~fuel st prog
        ~pc:rd.rd_pc
    in
    raise (VS.Halted v)
  in
  (* ---- per-instruction closure compilation --------------------------- *)
  let build gi (ins : Instr.t) : unit -> int =
    let next = gi + 1 in
    let fid = lw.fid_of_ir.(gi) in
    let al = if fid < 0 then pre_alloc else allocs.(fid) in
    let slot v = al.map.(v) in
    let epc = ins.epc in
    let getv (o : operand) : unit -> int =
      match o with
      | Imm n -> fun () -> n
      | Reg r ->
          let s = slot r in
          fun () -> Array.unsafe_get xs.regs (xs.rb + s)
      | RefL (off, len) -> fun () -> VS.pack_ref (st.frame_base + off) len
    in
    let gettag (o : operand) tc : unit -> char =
      if tc = ty_unk then
        match o with
        | Reg r ->
            let s = slot r in
            fun () -> Bytes.unsafe_get xs.rtg (xs.rb + s)
        | Imm _ | RefL _ -> fun () -> VS.tag_int
      else if tc = ty_ref then fun () -> VS.tag_ref
      else fun () -> VS.tag_int
    in
    let chk_int (o : operand) tc : unit -> int =
      if tc = ty_int then getv o
      else if tc = ty_ref then fun () ->
        VS.trap st epc "expected integer, found array reference"
      else
        match o with
        | Reg r ->
            let s = slot r in
            fun () ->
              let i = xs.rb + s in
              if Bytes.unsafe_get xs.rtg i <> VS.tag_int then
                VS.trap st epc "expected integer, found array reference";
              Array.unsafe_get xs.regs i
        | Imm n -> fun () -> n
        | RefL _ ->
            fun () -> VS.trap st epc "expected integer, found array reference"
    in
    let chk_ref (o : operand) tc : unit -> int =
      if tc = ty_ref then getv o
      else if tc = ty_int then fun () ->
        VS.trap st epc "expected array reference, found integer"
      else
        match o with
        | Reg r ->
            let s = slot r in
            fun () ->
              let i = xs.rb + s in
              if Bytes.unsafe_get xs.rtg i <> VS.tag_ref then
                VS.trap st epc "expected array reference, found integer";
              Array.unsafe_get xs.regs i
        | Imm n -> fun () -> n
        | RefL (off, len) -> fun () -> VS.pack_ref (st.frame_base + off) len
    in
    let setr ds v =
      Array.unsafe_set xs.regs (xs.rb + ds) v;
      if wt then Bytes.unsafe_set xs.rtg (xs.rb + ds) VS.tag_int
    in
    (* canonicalization moves; coloring frequently assigns src and dst
       the same physical slot, making the move a no-op — elide it here
       rather than paying two array stores per execution. With a runtime
       tag plane a same-slot move still matters when its static ty pins
       the tag to a constant (ty_unk would just copy the slot's own tag). *)
    let live_moves =
      Array.of_list
        (List.filter
           (fun m ->
             match m.m_src with
             | Reg r when slot r = slot m.m_dst -> wt && m.m_ty <> ty_unk
             | Imm _ | Reg _ | RefL _ -> true)
           (Array.to_list ins.moves))
    in
    let nm = Array.length live_moves in
    let mdst = Array.map (fun m -> slot m.m_dst) live_moves in
    let mget = Array.map (fun m -> getv m.m_src) live_moves in
    let mtag = Array.map (fun m -> gettag m.m_src m.m_ty) live_moves in
    let apply_moves () =
      for k = 0 to nm - 1 do
        let d = xs.rb + Array.unsafe_get mdst k in
        Array.unsafe_set xs.regs d ((Array.unsafe_get mget k) ());
        if wt then Bytes.unsafe_set xs.rtg d ((Array.unsafe_get mtag k) ())
      done
    in
    if not (Instr.segmented ins) then
      (* pure: no pcs, no events, no fuel gate *)
      match ins.kind with
      | Mov { dst; src; ty } -> (
          let ds = slot dst in
          match src with
          | Imm n ->
              let tg = if ty = ty_ref then VS.tag_ref else VS.tag_int in
              fun () ->
                Array.unsafe_set xs.regs (xs.rb + ds) n;
                if wt then Bytes.unsafe_set xs.rtg (xs.rb + ds) tg;
                next
          | Reg r ->
              let ss = slot r in
              fun () ->
                let g = xs.regs and b = xs.rb in
                Array.unsafe_set g (b + ds) (Array.unsafe_get g (b + ss));
                if wt then
                  Bytes.unsafe_set xs.rtg (b + ds)
                    (Bytes.unsafe_get xs.rtg (b + ss));
                next
          | RefL (off, len) ->
              fun () ->
                Array.unsafe_set xs.regs (xs.rb + ds)
                  (VS.pack_ref (st.frame_base + off) len);
                if wt then Bytes.unsafe_set xs.rtg (xs.rb + ds) VS.tag_ref;
                next)
      | Bin { dst; op; a; b; _ } -> (
          let ds = slot dst in
          match (op, a, b) with
          | Minic.Ast.Add, Reg ra, Imm n ->
              let sa = slot ra in
              fun () ->
                let g = xs.regs and rb0 = xs.rb in
                Array.unsafe_set g (rb0 + ds) (Array.unsafe_get g (rb0 + sa) + n);
                if wt then Bytes.unsafe_set xs.rtg (rb0 + ds) VS.tag_int;
                next
          | Minic.Ast.Sub, Reg ra, Imm n ->
              let sa = slot ra in
              fun () ->
                let g = xs.regs and rb0 = xs.rb in
                Array.unsafe_set g (rb0 + ds) (Array.unsafe_get g (rb0 + sa) - n);
                if wt then Bytes.unsafe_set xs.rtg (rb0 + ds) VS.tag_int;
                next
          | Minic.Ast.Add, Reg ra, Reg rb' ->
              let sa = slot ra and sb = slot rb' in
              fun () ->
                let g = xs.regs and rb0 = xs.rb in
                Array.unsafe_set g (rb0 + ds)
                  (Array.unsafe_get g (rb0 + sa) + Array.unsafe_get g (rb0 + sb));
                if wt then Bytes.unsafe_set xs.rtg (rb0 + ds) VS.tag_int;
                next
          | _ ->
              let f = binfn op in
              let ga = getv a and gb = getv b in
              fun () ->
                setr ds (f (ga ()) (gb ()));
                next)
      | Un { dst; op; a; _ } ->
          let ds = slot dst in
          let ga = getv a in
          fun () ->
            setr ds (VS.eval_unop op (ga ()));
            next
      | LoadG { dst; addr; _ } ->
          let ds = slot dst in
          fun () ->
            Array.unsafe_set xs.regs (xs.rb + ds) (Array.unsafe_get st.mem addr);
            if wt then
              Bytes.unsafe_set xs.rtg (xs.rb + ds)
                (Bytes.unsafe_get st.mem_tag addr);
            next
      | EndB ->
          fun () ->
            apply_moves ();
            next
      | _ -> assert false
    else begin
      (* segmented: fuel gate, clock, per-pc [on_instr], metric deltas,
         canonicalization — then the effect *)
      let seg = Instr.seg_len ins in
      let lo = ins.seg_lo and hi = ins.seg_hi in
      let dr = ins.d_reads and dw = ins.d_writes in
      let rd =
        match ins.deopt with
        | Some d ->
            {
              rd_pc = d.d_pc;
              rd_frame = resolve_frame al d.d_stack d.d_tags d.d_flush;
            }
        | None -> assert false
      in
      (* Specialized at build time: [hooked], the move count and the
         metric deltas are per-closure constants, so the per-execution
         path carries no dead branches, no zero adds and no [hooks]
         record load. *)
      let tick =
        let mets = dr <> 0 || dw <> 0 in
        if hooked && must_emit_range ~lo ~hi then begin
          match (mets, nm > 0) with
          | true, true ->
              fun () ->
                if st.instructions + seg > fuel then ignore (do_deopt rd);
                st.instructions <- st.instructions + seg;
                ev_range lo hi (st.instructions - seg);
                st.n_reads <- st.n_reads + dr;
                st.n_writes <- st.n_writes + dw;
                apply_moves ()
          | true, false ->
              fun () ->
                if st.instructions + seg > fuel then ignore (do_deopt rd);
                st.instructions <- st.instructions + seg;
                ev_range lo hi (st.instructions - seg);
                st.n_reads <- st.n_reads + dr;
                st.n_writes <- st.n_writes + dw
          | false, true ->
              fun () ->
                if st.instructions + seg > fuel then ignore (do_deopt rd);
                st.instructions <- st.instructions + seg;
                ev_range lo hi (st.instructions - seg);
                apply_moves ()
          | false, false ->
              fun () ->
                if st.instructions + seg > fuel then ignore (do_deopt rd);
                st.instructions <- st.instructions + seg;
                ev_range lo hi (st.instructions - seg)
        end
        else
          match (mets, nm > 0) with
          | true, true ->
              fun () ->
                if st.instructions + seg > fuel then ignore (do_deopt rd);
                st.instructions <- st.instructions + seg;
                st.n_reads <- st.n_reads + dr;
                st.n_writes <- st.n_writes + dw;
                apply_moves ()
          | true, false ->
              fun () ->
                if st.instructions + seg > fuel then ignore (do_deopt rd);
                st.instructions <- st.instructions + seg;
                st.n_reads <- st.n_reads + dr;
                st.n_writes <- st.n_writes + dw
          | false, true ->
              fun () ->
                if st.instructions + seg > fuel then ignore (do_deopt rd);
                st.instructions <- st.instructions + seg;
                apply_moves ()
          | false, false ->
              fun () ->
                if st.instructions + seg > fuel then ignore (do_deopt rd);
                st.instructions <- st.instructions + seg
      in
      match ins.kind with
      | Mov { dst; src; ty } ->
          (* a [StoreLocal]: the L register is the store *)
          let ds = slot dst in
          let gv = getv src in
          let tg = gettag src ty in
          fun () ->
            tick ();
            let d = xs.rb + ds in
            Array.unsafe_set xs.regs d (gv ());
            if wt then Bytes.unsafe_set xs.rtg d (tg ());
            next
      | Bin { dst; op; a; b; ta; tb } -> (
          let ds = slot dst in
          (* Non-trapping op on statically-int operands: resolve the op
             to a direct function and read the operands inline, instead
             of paying two operand-closure calls plus the [eval_binop]
             match on every execution. Trapping ops (Div/Mod/shifts) and
             runtime-tagged operands keep the generic checked path. *)
          let fast : (int -> int -> int) option =
            if ta <> ty_int || tb <> ty_int then None
            else
              match op with
              | Minic.Ast.Add -> Some ( + )
              | Minic.Ast.Sub -> Some ( - )
              | Minic.Ast.Mul -> Some ( * )
              | Minic.Ast.BitAnd -> Some ( land )
              | Minic.Ast.BitOr -> Some ( lor )
              | Minic.Ast.BitXor -> Some ( lxor )
              | Minic.Ast.Lt -> Some (fun x y -> if x < y then 1 else 0)
              | Minic.Ast.Le -> Some (fun x y -> if x <= y then 1 else 0)
              | Minic.Ast.Gt -> Some (fun x y -> if x > y then 1 else 0)
              | Minic.Ast.Ge -> Some (fun x y -> if x >= y then 1 else 0)
              | Minic.Ast.Eq -> Some (fun x y -> if x = y then 1 else 0)
              | Minic.Ast.Ne -> Some (fun x y -> if x <> y then 1 else 0)
              | _ -> None
          in
          match (fast, a, b) with
          | Some f, Reg ra, Imm n ->
              let sa = slot ra in
              fun () ->
                tick ();
                let g = xs.regs and rb0 = xs.rb in
                Array.unsafe_set g (rb0 + ds)
                  (f (Array.unsafe_get g (rb0 + sa)) n);
                if wt then Bytes.unsafe_set xs.rtg (rb0 + ds) VS.tag_int;
                next
          | Some f, Reg ra, Reg rb' ->
              let sa = slot ra and sb = slot rb' in
              fun () ->
                tick ();
                let g = xs.regs and rb0 = xs.rb in
                Array.unsafe_set g (rb0 + ds)
                  (f
                     (Array.unsafe_get g (rb0 + sa))
                     (Array.unsafe_get g (rb0 + sb)));
                if wt then Bytes.unsafe_set xs.rtg (rb0 + ds) VS.tag_int;
                next
          | Some f, Imm n, Reg rb' ->
              let sb = slot rb' in
              fun () ->
                tick ();
                let g = xs.regs and rb0 = xs.rb in
                Array.unsafe_set g (rb0 + ds)
                  (f n (Array.unsafe_get g (rb0 + sb)));
                if wt then Bytes.unsafe_set xs.rtg (rb0 + ds) VS.tag_int;
                next
          | _ ->
              let gb = chk_int b tb in
              let ga = chk_int a ta in
              fun () ->
                tick ();
                let bv = gb () in
                let av = ga () in
                setr ds (VS.eval_binop st epc op av bv);
                next)
      | Un { dst; op; a; ta } ->
          let ds = slot dst in
          let ga = chk_int a ta in
          fun () ->
            tick ();
            setr ds (VS.eval_unop op (ga ()));
            next
      | LoadG { dst; addr; _ } ->
          let ds = slot dst in
          fun () ->
            tick ();
            ev_read ~pc:epc ~addr;
            Array.unsafe_set xs.regs (xs.rb + ds) (Array.unsafe_get st.mem addr);
            if wt then
              Bytes.unsafe_set xs.rtg (xs.rb + ds)
                (Bytes.unsafe_get st.mem_tag addr);
            next
      | StoreG { addr; v; tv; ev } ->
          let gv = getv v in
          let tg = gettag v tv in
          fun () ->
            tick ();
            if ev then ev_write ~pc:epc ~addr;
            Array.unsafe_set st.mem addr (gv ());
            Bytes.unsafe_set st.mem_tag addr (tg ());
            next
      | LoadIx { dst; r; ix; tr; tix; ev } ->
          let ds = slot dst in
          let gix = chk_int ix tix in
          let gr = chk_ref r tr in
          fun () ->
            tick ();
            let ixv = gix () in
            let rv = gr () in
            let base = VS.ref_base rv and len = VS.ref_len rv in
            if ixv < 0 || ixv >= len then
              VS.trap st epc "index %d out of bounds [0,%d)" ixv len;
            let addr = base + ixv in
            if ev then ev_read ~pc:epc ~addr;
            Array.unsafe_set xs.regs (xs.rb + ds) (Array.unsafe_get st.mem addr);
            if wt then
              Bytes.unsafe_set xs.rtg (xs.rb + ds)
                (Bytes.unsafe_get st.mem_tag addr);
            next
      | StoreIx { r; ix; v; tr; tix; tv; ev } ->
          let gv = getv v in
          let tg = gettag v tv in
          let gix = chk_int ix tix in
          let gr = chk_ref r tr in
          fun () ->
            tick ();
            let vv = gv () in
            let vt = tg () in
            let ixv = gix () in
            let rv = gr () in
            let base = VS.ref_base rv and len = VS.ref_len rv in
            if ixv < 0 || ixv >= len then
              VS.trap st epc "index %d out of bounds [0,%d)" ixv len;
            let addr = base + ixv in
            if ev then ev_write ~pc:epc ~addr;
            Array.unsafe_set st.mem addr vv;
            Bytes.unsafe_set st.mem_tag addr vt;
            next
      | PrintI { v; tv } ->
          let gv = chk_int v tv in
          fun () ->
            tick ();
            st.out <- gv () :: st.out;
            next
      | JmpI t ->
          fun () ->
            tick ();
            t
      | BrI { c; tc; target; bkind; cid } ->
          let gc = chk_int c tc in
          fun () ->
            tick ();
            let taken = gc () = 0 in
            st.n_branches <- st.n_branches + 1;
            if hooked then ev_branch ~pc:epc ~kind:bkind ~cid ~taken;
            if taken then target else next
      | EndB ->
          fun () ->
            tick ();
            next
      | CallI ci ->
          let cf = prog.funcs.(ci.ci_fid) in
          let cal = allocs.(ci.ci_fid) in
          let wsize = cal.win_size in
          let centry = lw.entry_ir.(ci.ci_fid) in
          let nargs = Array.length ci.ci_args in
          let agets = Array.map getv ci.ci_args in
          let atags =
            Array.init nargs (fun i -> gettag ci.ci_args.(i) ci.ci_atags.[i])
          in
          let aslots = Array.init nargs (fun i -> cal.map.(i)) in
          let sus = resolve_frame al ci.ci_resume ci.ci_rtags ci.ci_rflush in
          let dslot = slot ci.ci_dst in
          let fslots = cf.frame_slots in
          let cfid = ci.ci_fid in
          let ret_pc = ci.ci_ret_pc in
          let fentry = cf.entry in
          fun () ->
            tick ();
            if st.depth >= st.max_depth then
              VS.trap st epc "call stack overflow";
            let d = st.depth in
            if d = Array.length st.call_ret then VS.grow_call_records st;
            if d >= Array.length xs.c_rb then grow_crec ();
            st.call_ret.(d) <- ret_pc;
            st.call_base.(d) <- st.frame_base;
            st.call_fid.(d) <- cfid;
            xs.c_rb.(d) <- xs.rb;
            xs.c_ret_ir.(d) <- next;
            xs.c_dst.(d) <- dslot;
            xs.c_sus.(d) <- sus;
            st.depth <- d + 1;
            let base = st.stack_top in
            VS.ensure_mem st (base + fslots);
            Array.fill st.mem base fslots 0;
            Bytes.fill st.mem_tag base fslots VS.tag_int;
            st.frame_base <- base;
            st.stack_top <- base + fslots;
            st.n_calls <- st.n_calls + 1;
            if st.depth > st.depth_hwm then st.depth_hwm <- st.depth;
            if st.stack_top > st.mem_hwm then st.mem_hwm <- st.stack_top;
            if hooked then ev_call ~pc:fentry ~fid:cfid;
            let wb = xs.rtop in
            ensure_regs (wb + wsize);
            Array.fill xs.regs wb wsize 0;
            if wt then Bytes.fill xs.rtg wb wsize VS.tag_int;
            (* argument reads hit the caller window, writes the (disjoint)
               callee window — no buffering needed *)
            for i = 0 to nargs - 1 do
              xs.regs.(wb + Array.unsafe_get aslots i) <-
                (Array.unsafe_get agets i) ()
            done;
            if wt then
              for i = 0 to nargs - 1 do
                Bytes.unsafe_set xs.rtg
                  (wb + Array.unsafe_get aslots i)
                  ((Array.unsafe_get atags i) ())
              done;
            xs.rb <- wb;
            xs.rtop <- wb + wsize;
            centry
      | RetI { v; vt } ->
          let gv = getv v in
          let tg = gettag v vt in
          let myfid = fid in
          let fslots = lw.funcs.(fid).ff.frame_slots in
          fun () ->
            tick ();
            let value = gv () in
            let vtag = if wt then tg () else VS.tag_int in
            st.depth <- st.depth - 1;
            let d = st.depth in
            if hooked then begin
              ev_ret ~pc:epc ~fid:myfid;
              ev_release ~base:st.frame_base ~size:fslots
            end;
            st.n_frames_released <- st.n_frames_released + 1;
            st.stack_top <- st.frame_base;
            st.frame_base <- Array.unsafe_get st.call_base d;
            xs.rtop <- xs.rb;
            xs.rb <- Array.unsafe_get xs.c_rb d;
            let ds = xs.rb + Array.unsafe_get xs.c_dst d in
            Array.unsafe_set xs.regs ds value;
            if wt then Bytes.unsafe_set xs.rtg ds vtag;
            Array.unsafe_get xs.c_ret_ir d
      | HaltI { v; tv } ->
          let gv = chk_int v tv in
          fun () ->
            tick ();
            raise (VS.Halted (gv ()))
    end
  in
  let steps = Array.mapi build lw.instrs in
  (* The final drain runs on every exit path: halt ([VS.Halted] from
     [HaltI]), deopt-assisted completion (drained at [do_deopt], so the
     finally is a no-op), and traps unwinding out of an effect — the
     buffered prefix of the stream must reach the hooks before the
     caller observes the outcome. *)
  let exit_value =
    Fun.protect ~finally:flush_ring (fun () ->
        try
          let pc = ref 0 in
          while true do
            pc := (Array.unsafe_get steps !pc) ()
          done;
          assert false
        with VS.Halted v -> v)
  in
  VS.finish st exit_value

let exec ~hooked ?(trace_locals = true) ?prune ?(regalloc = true)
    ?(ring = true) ?instr_range ?range_has_target ?set_time ?obs
    (hooks : Vm.Hooks.t) ?fuel ?max_depth (prog : Vm.Program.t) =
  let hook_locals = hooked && trace_locals in
  if hook_locals then
    (* local tracing events are not modeled in the IR; the threaded
       engine handles the -O0 model *)
    Vm.Lower.exec ~hooked ~trace_locals ?prune hooks ?fuel ?max_depth prog
  else
    let pruned =
      match prune with
      | Some m -> fun p -> Array.unsafe_get m p
      | None -> fun _ -> false
    in
    match Lower.lower ~hooked ~pruned prog with
    | None ->
        (* lowering bailed (nonstandard bytecode): the threaded engine is
           always exact *)
        Vm.Lower.exec ~hooked ~trace_locals ?prune hooks ?fuel ?max_depth prog
    | Some lw ->
        run_ir ~hooked ~trace_locals ?prune ~regalloc ~ring ?instr_range
          ?range_has_target ?set_time ?obs hooks ?fuel ?max_depth lw
