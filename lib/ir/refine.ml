(* Region refinement from register-IR def-use chains.

   {!Static.Points_to} loses the target region of an indexed access
   whenever the array reference flows through a path its abstract stack
   cannot follow — most prominently a ref-{e returning} call, which it
   collapses to "any region" and marks incomplete, vetoing pruning for
   every access that might alias it. The register IR keeps exactly the
   dataflow the abstract stack dropped: lowering folds [MakeRefGlobal]
   into an [Imm] holding the packed ref, and copies propagate through
   virtual registers whose def sites are explicit.

   [region_hints] runs a constant analysis over those defs: a vreg is a
   known packed ref iff {e every} def that can reach it — [Mov]s,
   canonicalization moves, call returns (resolved by a cross-function
   fixpoint over [RetI] operands) — yields the same constant. For each
   [LoadIx]/[StoreIx] whose ref operand resolves, the source stack pc is
   mapped to the concrete global region [(base, len)] it must access.
   {!Static.Depend.widen_prune} consumes the hints to upgrade incomplete
   accesses and re-run the prune derivation.

   Soundness without path-sensitivity: the analysis joins over def
   {e sites}, not paths, so a use reached before any def is not
   represented. Such a use reads the vreg's zero initialization, and the
   packed value 0 decodes to a length-0 ref — the bounds check traps
   before the event fires, so the hint's claim ("whenever this pc's
   event fires, the address lies in the region") is vacuously preserved.
   Parameters are defined by the caller's argument fill, which the
   per-function walk cannot see: they start at Top. Frame-local refs
   ([RefL]) also resolve to Top — hints name global regions only, which
   is what {!Static.Points_to.region}'s [Global] constructor models
   without a frame-instance qualifier.

   The lowering used here is the deterministic [~hooked:true] /
   no-prune configuration, independent of the engine or prune mask of
   the run that consumes the hints — so every engine derives the same
   widened mask and profiles stay engine-independent. *)

module VS = Vm.Vmstate

type value = Bot | Cst of int | Top

let join a b =
  match (a, b) with
  | Bot, v | v, Bot -> v
  | Cst x, Cst y when x = y -> a
  | _ -> Top

let region_hints (prog : Vm.Program.t) : int -> (int * int) option =
  match Lower.lower ~hooked:true ~pruned:(fun _ -> false) prog with
  | None -> fun _ -> None
  | Some lw ->
      let nf = Array.length lw.Lower.funcs in
      let vals =
        Array.map
          (fun (fi : Lower.func_ir) -> Array.make (max 1 fi.nvregs) Bot)
          lw.Lower.funcs
      in
      let ret = Array.make nf Bot in
      (* Parameter vregs are filled from the caller's arguments. *)
      Array.iteri
        (fun f (fi : Lower.func_ir) ->
          for v = 0 to min fi.ff.Vm.Program.nparams fi.nvregs - 1 do
            vals.(f).(v) <- Top
          done)
        lw.Lower.funcs;
      let changed = ref true in
      let eval f (o : Instr.operand) =
        match o with
        | Instr.Imm n -> Cst n
        | Instr.RefL _ -> Top
        | Instr.Reg v -> vals.(f).(v)
      in
      let def f v x =
        let cur = vals.(f).(v) in
        let j = join cur x in
        if j <> cur then begin
          vals.(f).(v) <- j;
          changed := true
        end
      in
      while !changed do
        changed := false;
        Array.iteri
          (fun f (fi : Lower.func_ir) ->
            for i = fi.ir_first to fi.ir_first + fi.ir_count - 1 do
              let ins = lw.Lower.instrs.(i) in
              Array.iter
                (fun (m : Instr.move) -> def f m.m_dst (eval f m.m_src))
                ins.Instr.moves;
              match ins.Instr.kind with
              | Instr.Mov { dst; src; _ } -> def f dst (eval f src)
              | Instr.Bin { dst; _ }
              | Instr.Un { dst; _ }
              | Instr.LoadG { dst; _ }
              | Instr.LoadIx { dst; _ } ->
                  def f dst Top
              | Instr.CallI ci -> def f ci.Instr.ci_dst ret.(ci.Instr.ci_fid)
              | Instr.RetI { v; _ } ->
                  let x = eval f v in
                  let j = join ret.(f) x in
                  if j <> ret.(f) then begin
                    ret.(f) <- j;
                    changed := true
                  end
              | _ -> ()
            done)
          lw.Lower.funcs
      done;
      (* One stack pc lowers to at most one indexed access, but join
         defensively: conflicting hints for a pc cancel out. *)
      let tbl : (int, (int * int) option) Hashtbl.t = Hashtbl.create 64 in
      let add epc hint =
        match Hashtbl.find_opt tbl epc with
        | None -> Hashtbl.replace tbl epc hint
        | Some prev -> if prev <> hint then Hashtbl.replace tbl epc None
      in
      let hint_of f (r : Instr.operand) =
        match r with
        | Instr.Imm n -> Some (VS.ref_base n, VS.ref_len n)
        | Instr.Reg v -> (
            match vals.(f).(v) with
            | Cst n -> Some (VS.ref_base n, VS.ref_len n)
            | Bot | Top -> None)
        | Instr.RefL _ -> None
      in
      Array.iteri
        (fun f (fi : Lower.func_ir) ->
          for i = fi.ir_first to fi.ir_first + fi.ir_count - 1 do
            let ins = lw.Lower.instrs.(i) in
            if ins.Instr.epc >= 0 then
              match ins.Instr.kind with
              | Instr.LoadIx { r; _ } | Instr.StoreIx { r; _ } ->
                  add ins.Instr.epc (hint_of f r)
              | _ -> ()
          done)
        lw.Lower.funcs;
      fun pc ->
        match Hashtbl.find_opt tbl pc with Some (Some h) -> Some h | _ -> None
