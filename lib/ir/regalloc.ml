(* Graph-coloring register allocation onto a fixed physical window.

   Interference is built from {!Liveness}: every def interferes with the
   registers live out of its instruction, defs at the same instruction
   (parallel canonicalization moves) interfere pairwise, and — because
   the moves of one instruction are applied sequentially — defs also
   interfere with that instruction's uses, so no move can clobber a slot
   another move of the same batch still reads.

   Chaitin simplification with optimistic spilling: nodes colored at or
   above {!nregs} are "spills", which here just means window slots past
   the register file — a spilled vreg costs locality, not extra
   instructions, and the count is surfaced as the [ir.spills] gauge. *)

let nregs = 16

type alloc = {
  map : int array;  (** vreg -> window slot *)
  win_size : int;  (** slots the window occupies (zeroed per call) *)
  spills : int;  (** vregs assigned slots >= {!nregs} *)
}

let identity nvregs =
  { map = Array.init nvregs (fun i -> i); win_size = max nvregs 1; spills = 0 }

let allocate ~identity:id (lw : Lower.t) (fi : Lower.func_ir) =
  let n = fi.nvregs in
  if id || n = 0 then identity n
  else begin
    let lv = Liveness.analyze lw fi in
    let adj = Bytes.make (n * n) '\000' in
    let deg = Array.make n 0 in
    let edge a b =
      if a <> b && Bytes.get adj ((a * n) + b) = '\000' then begin
        Bytes.set adj ((a * n) + b) '\001';
        Bytes.set adj ((b * n) + a) '\001';
        deg.(a) <- deg.(a) + 1;
        deg.(b) <- deg.(b) + 1
      end
    in
    for li = 0 to fi.ir_count - 1 do
      let out = lv.live_out.(li) in
      let ds = lv.defs.(li) in
      List.iter
        (fun d ->
          for v = 0 to n - 1 do
            if Bytes.unsafe_get out v = '\001' then edge d v
          done;
          List.iter (fun d' -> edge d d') ds;
          if List.length ds > 1 then List.iter (fun u -> edge d u) lv.uses.(li))
        ds
    done;
    (* Parameters have no defining instruction in the body — they are
       defined by the caller's argument writes, a virtual instruction at
       function entry. Model exactly that: params interfere pairwise
       (the writes are sequential, so a later dead param must not clobber
       an earlier live one) and with everything live into the body. *)
    let nparams = fi.ff.Vm.Program.nparams in
    if nparams > 0 && fi.ir_count > 0 then begin
      let entry_in = lv.live_in.(0) in
      for p = 0 to nparams - 1 do
        for q = p + 1 to nparams - 1 do
          edge p q
        done;
        for v = 0 to n - 1 do
          if Bytes.unsafe_get entry_in v = '\001' then edge p v
        done
      done
    end;
    (* simplify: push low-degree nodes, spill-candidates optimistically *)
    let removed = Array.make n false in
    let cdeg = Array.copy deg in
    let stack = Array.make n 0 in
    let sp = ref 0 in
    let drop v =
      removed.(v) <- true;
      stack.(!sp) <- v;
      incr sp;
      for w = 0 to n - 1 do
        if (not removed.(w)) && Bytes.get adj ((v * n) + w) = '\001' then
          cdeg.(w) <- cdeg.(w) - 1
      done
    in
    while !sp < n do
      let pick = ref (-1) in
      for v = 0 to n - 1 do
        if (not removed.(v)) && cdeg.(v) < nregs && !pick < 0 then pick := v
      done;
      if !pick < 0 then begin
        (* no trivially colorable node: optimistically push the one with
           the highest live pressure *)
        let best = ref (-1) and bd = ref (-1) in
        for v = 0 to n - 1 do
          if (not removed.(v)) && cdeg.(v) > !bd then begin
            best := v;
            bd := cdeg.(v)
          end
        done;
        pick := !best
      end;
      drop !pick
    done;
    (* color in reverse simplification order *)
    let color = Array.make n (-1) in
    let taken = Array.make (n + 1) false in
    for i = n - 1 downto 0 do
      let v = stack.(i) in
      Array.fill taken 0 (n + 1) false;
      for w = 0 to n - 1 do
        if Bytes.get adj ((v * n) + w) = '\001' && color.(w) >= 0 then
          taken.(color.(w)) <- true
      done;
      let c = ref 0 in
      while taken.(!c) do
        incr c
      done;
      color.(v) <- !c
    done;
    let win = ref 0 and spills = ref 0 in
    Array.iter
      (fun c ->
        if c + 1 > !win then win := c + 1;
        if c >= nregs then incr spills)
      color;
    { map = color; win_size = max !win 1; spills = !spills }
  end
