(* The register IR: three-address instructions over per-function virtual
   registers, produced by {!Lower} from the stack bytecode and executed
   by {!Exec} after {!Regalloc} maps virtual registers onto a window of
   physical slots.

   Virtual register space of a function with [frame_slots] locals and a
   maximum operand-stack depth [maxd]:

   - [0 .. frame_slots-1]: the scalar frame slots ("L registers") — the
     canonical, always-current value of each local. Frame memory is only
     synchronized on deoptimization.
   - [frame_slots .. frame_slots+maxd-1]: the canonical stack registers
     ("S registers") — at every block boundary the operand stack of
     depth [d] lives in S_0..S_{d-1}, which is what makes the symbolic
     stacks of predecessor blocks meet.
   - above that: block-local SSA temporaries.

   Hook transparency is carried by {e tick segments}: every instruction
   that can fire an event, trap, or transfer control owns a contiguous
   range [seg_lo..seg_hi] of original stack pcs. Its closure first gates
   on fuel (deoptimizing to the switch interpreter if the segment does
   not fit), then advances the instruction clock by the segment length,
   fires [on_instr] per covered pc, and only then performs its effect —
   so the event stream is byte-identical to the reference engine. Pure
   instructions (register moves, proven-integer arithmetic, pruned
   global loads) own no pcs; the instructions they were folded out of
   are covered positionally by the next segment.

   Operand positions that the reference engine tag-checks carry the
   statically known tag of the value ([ty_int] elides the check,
   [ty_ref] always traps, [ty_unk] consults the runtime tag). *)

type operand =
  | Reg of int  (** virtual register *)
  | Imm of int  (** constant: folded [Const], or a packed global ref *)
  | RefL of int * int
      (** frame-relative array ref: [pack_ref (frame_base+off) len] *)

(* Static tag knowledge, used to elide runtime tag checks and to
   materialize tagged stack slots on deoptimization. *)
let ty_int = 'i'
let ty_ref = 'r'
let ty_unk = '?'

type move = { m_dst : int; m_src : operand; m_ty : char }

type deopt = {
  d_pc : int;  (** stack pc execution resumes at *)
  d_stack : operand array;  (** operand stack at [d_pc], bottom to top *)
  d_tags : string;  (** static tag per stack entry *)
  d_flush : (int * int * char) array;
      (** (frame slot, L-vreg, tag) triples: locals live at [d_pc],
          flushed from registers to frame memory before the hand-off *)
}

type call_info = {
  ci_fid : int;
  ci_args : operand array;
  ci_atags : string;  (** static tag per argument *)
  ci_dst : int;  (** caller vreg receiving the return value *)
  ci_ret_pc : int;  (** stack return pc (call pc + 1) *)
  ci_resume : operand array;
      (** the caller's symbolic stack below the arguments — rebuilt on a
          deoptimization that fires while this frame is suspended *)
  ci_rtags : string;
  ci_rflush : (int * int * char) array;  (** locals live at [ci_ret_pc] *)
}

type kind =
  | Mov of { dst : int; src : operand; ty : char }
  | Bin of {
      dst : int;
      op : Minic.Ast.binop;
      a : operand;
      b : operand;
      ta : char;  (** static tag of [a]; non-[ty_int] checks at run time *)
      tb : char;
    }
  | Un of { dst : int; op : Minic.Ast.unop; a : operand; ta : char }
  | LoadG of { dst : int; addr : int; ev : bool }
  | StoreG of { addr : int; v : operand; tv : char; ev : bool }
  | LoadIx of {
      dst : int;
      r : operand;
      ix : operand;
      tr : char;
      tix : char;
      ev : bool;
    }
  | StoreIx of {
      r : operand;
      ix : operand;
      v : operand;
      tr : char;
      tix : char;
      tv : char;
      ev : bool;
    }
  | PrintI of { v : operand; tv : char }
  | JmpI of int  (** IR target (block id until patched) *)
  | BrI of {
      c : operand;
      tc : char;
      target : int;  (** taken = condition zero; fallthrough otherwise *)
      bkind : Vm.Instr.branch_kind;
      cid : int;
    }
  | CallI of call_info
  | RetI of { v : operand; vt : char }
  | HaltI of { v : operand; tv : char }
  | EndB  (** synthetic block end: ticks + canonicalization moves only *)

type t = {
  kind : kind;
  epc : int;  (** source stack pc this instruction maps back to; -1 = synthetic *)
  seg_lo : int;
  seg_hi : int;  (** covered stack pcs; [seg_lo > seg_hi] = pure *)
  moves : move array;  (** applied after the fuel gate (canonicalization) *)
  d_reads : int;  (** reference [n_reads] delta across the segment *)
  d_writes : int;
  deopt : deopt option;  (** [Some] iff the instruction is segmented *)
}

let segmented i = i.seg_lo <= i.seg_hi
let seg_len i = if segmented i then i.seg_hi - i.seg_lo + 1 else 0

(* [reg] names a virtual register; disasm passes the allocation map's
   physical name instead of the default "vN". *)
let vname r = Printf.sprintf "v%d" r

let operand_to_string ?(reg = vname) o =
  match o with
  | Reg r -> reg r
  | Imm n -> Printf.sprintf "#%d" n
  | RefL (off, len) -> Printf.sprintf "&fp[%d]:%d" off len

let chk t = if t = ty_int then "" else if t = ty_ref then "!r" else "!?"

let kind_to_string ?(reg = vname) k =
  let opnd = operand_to_string ~reg in
  match k with
  | Mov { dst; src; _ } -> Printf.sprintf "%s := %s" (reg dst) (opnd src)
  | Bin { dst; op; a; b; ta; tb } ->
      Format.asprintf "%s := %s%s %a %s%s" (reg dst) (chk ta) (opnd a)
        Minic.Ast.pp_binop op (chk tb) (opnd b)
  | Un { dst; op; a; ta } ->
      Format.asprintf "%s := %a %s%s" (reg dst) Minic.Ast.pp_unop op (chk ta)
        (opnd a)
  | LoadG { dst; addr; ev } ->
      Printf.sprintf "%s := g[%d]%s" (reg dst) addr (if ev then " ev" else "")
  | StoreG { addr; v; ev; _ } ->
      Printf.sprintf "g[%d] := %s%s" addr (opnd v) (if ev then " ev" else "")
  | LoadIx { dst; r; ix; tr; tix; ev } ->
      Printf.sprintf "%s := %s%s[%s%s]%s" (reg dst) (chk tr) (opnd r) (chk tix)
        (opnd ix)
        (if ev then " ev" else "")
  | StoreIx { r; ix; v; tr; tix; ev; _ } ->
      Printf.sprintf "%s%s[%s%s] := %s%s" (chk tr) (opnd r) (chk tix) (opnd ix)
        (opnd v)
        (if ev then " ev" else "")
  | PrintI { v; tv } -> Printf.sprintf "print %s%s" (chk tv) (opnd v)
  | JmpI t -> Printf.sprintf "jmp @%d" t
  | BrI { c; tc; target; bkind; cid } ->
      let ks =
        match bkind with
        | Vm.Instr.BrIf -> "if"
        | Vm.Instr.BrLoop -> "loop"
        | Vm.Instr.BrSc -> "sc"
      in
      Printf.sprintf "brz[%s,c%d] %s%s @%d" ks cid (chk tc) (opnd c) target
  | CallI ci ->
      Printf.sprintf "%s := call f%d(%s)" (reg ci.ci_dst) ci.ci_fid
        (String.concat ", " (Array.to_list (Array.map opnd ci.ci_args)))
  | RetI { v; _ } -> Printf.sprintf "ret %s" (opnd v)
  | HaltI { v; tv } -> Printf.sprintf "halt %s%s" (chk tv) (opnd v)
  | EndB -> "endb"

let to_string ?(reg = vname) i =
  let seg =
    if segmented i then Printf.sprintf " ;[%d..%d]" i.seg_lo i.seg_hi else ""
  in
  let mv =
    if Array.length i.moves = 0 then ""
    else
      Printf.sprintf " {%s}"
        (String.concat "; "
           (Array.to_list
              (Array.map
                 (fun m ->
                   Printf.sprintf "%s:=%s" (reg m.m_dst)
                     (operand_to_string ~reg m.m_src))
                 i.moves)))
  in
  kind_to_string ~reg i.kind ^ mv ^ seg
