(* Side-by-side disassembly: stack bytecode on the left, the allocated
   register IR on the right, aligned by the tick segments the IR
   instructions own. Pure IR instructions (folded constants, stack
   shuffles that became renames, canonicalization moves) own no stack
   pcs and appear on lines of their own; conversely, segment interiors
   — stack pcs fused into one IR instruction — show an empty right
   column, which makes the compression visible pc by pc. *)

let left_width = 46

let to_string ?(regalloc = true) (prog : Vm.Program.t) =
  match Lower.lower ~hooked:true ~pruned:(fun _ -> false) prog with
  | None ->
      ";; register lowering unavailable for this program (engine falls \
       back to threaded); stack bytecode only\n\n" ^ Vm.Disasm.to_string prog
  | Some lw ->
      let b = Buffer.create 4096 in
      let row l r =
        if r = "" then Buffer.add_string b l
        else begin
          Buffer.add_string b l;
          let pad = left_width - String.length l in
          if pad > 0 then Buffer.add_string b (String.make pad ' ');
          Buffer.add_string b " | ";
          Buffer.add_string b r
        end;
        Buffer.add_char b '\n'
      in
      let stack_cell pc =
        Printf.sprintf "%4d [line %3d]  %s" pc
          (Vm.Program.line_of_pc prog pc)
          (Vm.Instr.to_string prog.Vm.Program.code.(pc))
      in
      let emit_range ?header name lo hi (alloc : Regalloc.alloc) =
        let reg v =
          let s = alloc.Regalloc.map.(v) in
          if s < Regalloc.nregs then Printf.sprintf "r%d" s
          else Printf.sprintf "w%d" s
        in
        row (Printf.sprintf ";; %s" name) "";
        (match header with Some h -> row (";; " ^ h) "" | None -> ());
        for gi = lo to hi do
          let ins = lw.Lower.instrs.(gi) in
          let ir_cell = Printf.sprintf "ir%-4d %s" gi (Instr.to_string ~reg ins) in
          if Instr.segmented ins then begin
            row (stack_cell ins.Instr.seg_lo) ir_cell;
            for pc = ins.Instr.seg_lo + 1 to ins.Instr.seg_hi do
              row (stack_cell pc) ""
            done
          end
          else row "" ir_cell
        done;
        Buffer.add_char b '\n'
      in
      emit_range "preamble" 0 1 (Regalloc.identity 1);
      Array.iteri
        (fun fid (fi : Lower.func_ir) ->
          let f = fi.Lower.ff in
          let alloc = Regalloc.allocate ~identity:(not regalloc) lw fi in
          emit_range
            (Printf.sprintf "function %s (fid %d)" f.Vm.Program.name fid)
            ~header:
              (Printf.sprintf
                 "%d stack pcs -> %d IR instrs; %d vregs -> %d-slot window, \
                  %d spill(s)"
                 (f.Vm.Program.code_end - f.Vm.Program.entry)
                 fi.Lower.ir_count fi.Lower.nvregs alloc.Regalloc.win_size
                 alloc.Regalloc.spills)
            fi.Lower.ir_first
            (fi.Lower.ir_first + fi.Lower.ir_count - 1)
            alloc)
        lw.Lower.funcs;
      Buffer.contents b
