type summary = {
  cid : int;
  raw_violating : int;
  war_violating : int;
  waw_violating : int;
  raw_total : int;
  war_total : int;
  waw_total : int;
}

let is_violating (p : Profile.construct_profile) (s : Profile.edge_stats) =
  s.min_tdep <= Profile.mean_duration p

let summarize (t : Profile.t) ~cid =
  let p = Profile.get t cid in
  let acc = ref { cid; raw_violating = 0; war_violating = 0; waw_violating = 0;
                  raw_total = 0; war_total = 0; waw_total = 0 } in
  Profile.iter_edges p (fun k s ->
      let v = is_violating p s in
      let a = !acc in
      acc :=
        (match k.kind with
        | Shadow.Dependence.Raw ->
            { a with raw_total = a.raw_total + 1;
                     raw_violating = (a.raw_violating + if v then 1 else 0) }
        | Shadow.Dependence.War ->
            { a with war_total = a.war_total + 1;
                     war_violating = (a.war_violating + if v then 1 else 0) }
        | Shadow.Dependence.Waw ->
            { a with waw_total = a.waw_total + 1;
                     waw_violating = (a.waw_violating + if v then 1 else 0) }));
  !acc

let violating_edges (t : Profile.t) ~cid =
  let p = Profile.get t cid in
  Profile.edges_sorted p |> List.filter (fun (_, s) -> is_violating p s)

let total_violating_raw (t : Profile.t) =
  Array.fold_left
    (fun acc (p : Profile.construct_profile) ->
      Profile.fold_edges p
        (fun (k : Profile.edge_key) s n ->
          if k.kind = Shadow.Dependence.Raw && is_violating p s then n + 1
          else n)
        acc)
    0 t.by_cid
