type entry = {
  cid : int;
  name : string;
  kind : Vm.Program.construct_kind;
  line : int;
  ttotal : int;
  instances : int;
  violations : Violation.summary;
}

let entry_of (t : Profile.t) (c : Vm.Program.construct_info) =
  let p = Profile.get t c.cid in
  {
    cid = c.cid;
    name = Format.asprintf "%a" Vm.Program.pp_construct c;
    kind = c.kind;
    line = c.loc.Minic.Srcloc.line;
    ttotal = p.ttotal;
    instances = p.instances;
    violations = Violation.summarize t ~cid:c.cid;
  }

let rank ?(min_instructions = 1) (t : Profile.t) =
  Array.to_list t.prog.constructs
  |> List.map (entry_of t)
  |> List.filter (fun e -> e.instances > 0 && e.ttotal >= min_instructions)
  |> List.sort (fun a b -> compare b.ttotal a.ttotal)

let remove_with_singletons (t : Profile.t) entries ~cid =
  let removed = Hashtbl.create 16 in
  Hashtbl.replace removed cid ();
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun e ->
        if not (Hashtbl.mem removed e.cid) then begin
          let p = Profile.get t e.cid in
          let total_parent_occurrences = ref 0 in
          let all_removed = ref (Hashtbl.length p.parents > 0) in
          let max_parent_instances = ref 0 in
          Hashtbl.iter
            (fun parent_cid count ->
              let count = !count in
              total_parent_occurrences := !total_parent_occurrences + count;
              if parent_cid < 0 || not (Hashtbl.mem removed parent_cid) then
                all_removed := false
              else
                max_parent_instances :=
                  max !max_parent_instances
                    (Profile.get t parent_cid).Profile.instances)
            p.parents;
          (* "Single nested instance per instance": the construct only ever
             occurs inside removed constructs, at most once per enclosing
             instance. *)
          if !all_removed && e.instances <= !max_parent_instances then begin
            Hashtbl.replace removed e.cid ();
            changed := true
          end
        end)
      entries
  done;
  List.filter (fun e -> not (Hashtbl.mem removed e.cid)) entries

let pp_entry ppf e =
  Format.fprintf ppf "%s Tdur=%d, inst=%d (RAW viol %d/%d, WAW %d/%d, WAR %d/%d)"
    e.name e.ttotal e.instances e.violations.Violation.raw_violating
    e.violations.Violation.raw_total e.violations.Violation.waw_violating
    e.violations.Violation.waw_total e.violations.Violation.war_violating
    e.violations.Violation.war_total
