type entry = {
  cid : int;
  name : string;
  kind : Vm.Program.construct_kind;
  line : int;
  ttotal : int;
  instances : int;
  violations : Violation.summary;
  static_indep : bool;
  dist_bounded : bool;
  legality_known : bool;
  priv_edges : int;
  red_edges : int;
  blocking_edges : int;
  race_status : Static.Race.Status.t option;
}

let entry_of (t : Profile.t) dep (c : Vm.Program.construct_info) =
  let p = Profile.get t c.cid in
  (* Does at least one of this construct's recorded edges carry a proven
     minimum iteration distance? Live analysis when available, else the
     bounds a version-3 profile stored. *)
  let dist_bounded =
    List.exists
      (fun ((k : Profile.edge_key), _) ->
        match dep with
        | Some d ->
            Static.Depend.distance_bound d ~head_pc:k.head_pc
              ~tail_pc:k.tail_pc
            <> None
        | None ->
            Option.fold ~none:false
              ~some:
                (List.mem_assoc
                   (Profile.Key.pack ~head_pc:k.head_pc ~tail_pc:k.tail_pc
                      k.kind))
              t.Profile.static_distbounds)
      (Profile.edges_sorted p)
  in
  (* Partition the construct's recorded edges by transform legality:
     proven removable by privatization, by reduction rewrite, or
     blocking (everything else — serializing edges and unclassified RAW
     dataflow). Live analysis when available, else a version-4
     profile's stored verdicts. *)
  let legality_of (k : Profile.edge_key) =
    match dep with
    | Some d ->
        Static.Legality.classify (Static.Depend.legality d) ~kind:k.kind
          ~head_pc:k.head_pc ~tail_pc:k.tail_pc
    | None ->
        Option.bind t.Profile.static_legality
          (List.assoc_opt
             (Profile.Key.pack ~head_pc:k.head_pc ~tail_pc:k.tail_pc k.kind))
  in
  let legality_known = dep <> None || t.Profile.static_legality <> None in
  let priv_edges = ref 0 and red_edges = ref 0 and blocking_edges = ref 0 in
  if legality_known then
    List.iter
      (fun (k, _) ->
        match legality_of k with
        | Some Static.Legality.Privatizable -> incr priv_edges
        | Some Static.Legality.Reduction -> incr red_edges
        | Some Static.Legality.Serializing | None -> incr blocking_edges)
      (Profile.edges_sorted p);
  {
    cid = c.cid;
    name = Format.asprintf "%a" Vm.Program.pp_construct c;
    kind = c.kind;
    line = c.loc.Minic.Srcloc.line;
    ttotal = p.ttotal;
    instances = p.instances;
    violations = Violation.summarize t ~cid:c.cid;
    static_indep =
      (match dep with
      | Some d -> Static.Depend.construct_proven_independent d ~cid:c.cid
      | None -> false);
    dist_bounded;
    legality_known;
    priv_edges = !priv_edges;
    red_edges = !red_edges;
    blocking_edges = !blocking_edges;
    race_status =
      (* Live detector when available, else a version-5 profile's
         stored statuses. *)
      (match dep with
      | Some d -> Static.Race.status (Static.Depend.race d) ~cid:c.cid
      | None -> Option.bind t.Profile.static_race (List.assoc_opt c.cid));
  }

let rank ?dep ?(min_instructions = 1) (t : Profile.t) =
  (* A profile that carries verdicts came from a run with the static
     layer on; recompute the analysis (cheap, deterministic) unless the
     caller shares one. A verdict-less profile (trace_locals, old v1
     file) ranks without the static column rather than claiming
     independence the run never established. *)
  let dep =
    match dep with
    | Some _ -> dep
    | None ->
        if t.Profile.static_verdicts <> None then
          Some (Static.Depend.analyze t.prog)
        else None
  in
  Array.to_list t.prog.constructs
  |> List.map (entry_of t dep)
  |> List.filter (fun e -> e.instances > 0 && e.ttotal >= min_instructions)
  |> List.sort (fun a b -> compare b.ttotal a.ttotal)

let remove_with_singletons (t : Profile.t) entries ~cid =
  let removed = Hashtbl.create 16 in
  Hashtbl.replace removed cid ();
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun e ->
        if not (Hashtbl.mem removed e.cid) then begin
          let p = Profile.get t e.cid in
          let total_parent_occurrences = ref 0 in
          let all_removed = ref (Hashtbl.length p.parents > 0) in
          let max_parent_instances = ref 0 in
          Hashtbl.iter
            (fun parent_cid count ->
              let count = !count in
              total_parent_occurrences := !total_parent_occurrences + count;
              if parent_cid < 0 || not (Hashtbl.mem removed parent_cid) then
                all_removed := false
              else
                max_parent_instances :=
                  max !max_parent_instances
                    (Profile.get t parent_cid).Profile.instances)
            p.parents;
          (* "Single nested instance per instance": the construct only ever
             occurs inside removed constructs, at most once per enclosing
             instance. *)
          if !all_removed && e.instances <= !max_parent_instances then begin
            Hashtbl.replace removed e.cid ();
            changed := true
          end
        end)
      entries
  done;
  List.filter (fun e -> not (Hashtbl.mem removed e.cid)) entries

let pp_entry ppf e =
  Format.fprintf ppf
    "%s Tdur=%d, inst=%d (RAW viol %d/%d, WAW %d/%d, WAR %d/%d)%s%s%s%s%s%s"
    e.name
    e.ttotal e.instances e.violations.Violation.raw_violating
    e.violations.Violation.raw_total e.violations.Violation.waw_violating
    e.violations.Violation.waw_total e.violations.Violation.war_violating
    e.violations.Violation.war_total
    (if e.static_indep then " [statically independent]" else "")
    (if e.dist_bounded then " [distance-bounded]" else "")
    (if e.priv_edges > 0 then " [priv]" else "")
    (if e.red_edges > 0 then " [red]" else "")
    (match e.race_status with
    | Some Static.Race.Status.Race_free -> " [race-free]"
    | Some Static.Race.Status.Racy -> " [racy]"
    | Some Static.Race.Status.Unknown | None -> "")
    (if e.legality_known then Printf.sprintf " blocking=%d" e.blocking_edges
     else "")
