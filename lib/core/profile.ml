type edge_key = { head_pc : int; tail_pc : int; kind : Shadow.Dependence.kind }

module Key = struct
  type t = int

  let kind_tag = function
    | Shadow.Dependence.Raw -> 0
    | Shadow.Dependence.War -> 1
    | Shadow.Dependence.Waw -> 2

  let kind_of_tag = function
    | 0 -> Shadow.Dependence.Raw
    | 1 -> Shadow.Dependence.War
    | _ -> Shadow.Dependence.Waw

  let pack ~head_pc ~tail_pc kind =
    (head_pc lsl 31) lor (tail_pc lsl 2) lor kind_tag kind

  let head_pc k = k lsr 31
  let tail_pc k = (k lsr 2) land 0x1FFF_FFFF
  let kind k = kind_of_tag (k land 3)
  let unpack k = { head_pc = head_pc k; tail_pc = tail_pc k; kind = kind k }
  let compare (a : int) b = compare a b
end

type edge_stats = {
  mutable min_tdep : int;
  mutable count : int;
  mutable addrs : int list;
  mutable tail_internal : bool;
}

(* Open-addressing int-keyed table (linear probing, power-of-two
   capacity). [record_edge] runs once per attributed dependence — on
   gzip that is ~1.9M probes per run — and a bucket-list Hashtbl costs a
   pointer chase (usually a cache miss) plus a [Some] allocation per
   probe. Here a hit is one array scan with no allocation. Keys are
   {!Key.pack} values: always [>= 0], so [min_int] marks an empty slot. *)
module Etbl = struct
  type 'a t = {
    mutable keys : int array;
    mutable vals : 'a array;
    mutable size : int;
    mutable mask : int;
    dummy : 'a;
  }

  let no_key = min_int

  let create dummy n =
    let cap = ref 8 in
    while !cap < n do
      cap := !cap * 2
    done;
    {
      keys = Array.make !cap no_key;
      vals = Array.make !cap dummy;
      size = 0;
      mask = !cap - 1;
      dummy;
    }

  (* Fibonacci-style multiplicative mix: packed keys differ mostly in a
     few bit ranges; spread them across the table. The probe index is
     always masked to the power-of-two capacity, so the loop's loads are
     in bounds by construction and safely unchecked. *)
  let[@inline] slot t k =
    let mask = t.mask in
    let keys = t.keys in
    let i = ref ((k * 0x5DEECE66D) land mask) in
    while
      let k' = Array.unsafe_get keys !i in
      k' <> k && k' <> no_key
    do
      i := (!i + 1) land mask
    done;
    !i

  let[@inline] key_at t i = t.keys.(i)
  let[@inline] val_at t i = t.vals.(i)

  let grow t =
    let keys = t.keys and vals = t.vals in
    let cap = 2 * (t.mask + 1) in
    t.keys <- Array.make cap no_key;
    t.vals <- Array.make cap t.dummy;
    t.mask <- cap - 1;
    Array.iteri
      (fun i k ->
        if k <> no_key then begin
          let j = slot t k in
          t.keys.(j) <- k;
          t.vals.(j) <- vals.(i)
        end)
      keys

  (* Install [v] at the empty slot [i] previously returned by {!slot};
     keeps the load factor at most 1/2. *)
  let install t i k v =
    t.keys.(i) <- k;
    t.vals.(i) <- v;
    t.size <- t.size + 1;
    if 2 * t.size > t.mask then grow t

  let find_opt t k =
    let i = slot t k in
    if t.keys.(i) = k then Some t.vals.(i) else None

  let mem t k = t.keys.(slot t k) = k

  let add t k v =
    let i = slot t k in
    if t.keys.(i) = k then t.vals.(i) <- v else install t i k v

  let iter f t =
    Array.iteri (fun i k -> if k <> no_key then f k t.vals.(i)) t.keys

  let fold f t acc =
    let acc = ref acc in
    Array.iteri (fun i k -> if k <> no_key then acc := f k t.vals.(i) !acc) t.keys;
    !acc

  let length t = t.size
end

type construct_profile = {
  cid : int;
  mutable ttotal : int;
  mutable instances : int;
  edges : edge_stats Etbl.t;
  parents : (int, int ref) Hashtbl.t;
  mutable nesting : int;
  mutable cache_key : Key.t;
  mutable cache_stats : edge_stats;
  mutable cache_parent_cid : int;
  mutable cache_parent_count : int ref;
}

type t = {
  prog : Vm.Program.t;
  by_cid : construct_profile array;
  mutable total_instructions : int;
  mutable static_verdicts : (Key.t * Static.Depend.verdict) list option;
      (* one global association (verdicts are construct-independent),
         sorted by packed key; [None] = no static layer ran *)
  mutable static_distbounds : (Key.t * int) list option;
      (* proven minimum dependence distance in loop iterations, by packed
         key, sorted; only bounds >= 1 are kept. [None] = no static layer
         ran; [Some []] = it ran and proved nothing *)
  mutable static_legality : (Key.t * Static.Legality.verdict) list option;
      (* transform-legality verdicts by packed key, sorted; only edges
         the legality engine classifies appear (all recorded WAR/WAW,
         plus RAW edges proven reductions). [None] = no static layer
         ran; [Some []] = it ran and classified nothing *)
  mutable static_race : (int * Static.Race.Status.t) list option;
      (* race-detector statuses by construct id, sorted; only recorded
         (instances > 0) loop/proc constructs appear — conditionals
         have no concurrent units and unexecuted constructs have no
         profile entry to validate against. [None] = the detector did
         not run; [Some []] = it ran and no recorded construct was
         classifiable *)
}

let dummy_stats () =
  { min_tdep = max_int; count = 0; addrs = []; tail_internal = false }

let create (prog : Vm.Program.t) =
  (* One shared sentinel: it is never mutated (only ever compared or
     replaced), so every construct's empty table can point at it. *)
  let dummy = dummy_stats () in
  {
    prog;
    by_cid =
      Array.map
        (fun (c : Vm.Program.construct_info) ->
          {
            cid = c.cid;
            ttotal = 0;
            instances = 0;
            edges = Etbl.create dummy 8;
            parents = Hashtbl.create 4;
            nesting = 0;
            cache_key = min_int;
            cache_stats = dummy;
            cache_parent_cid = min_int;
            cache_parent_count = ref 0;
          })
        prog.constructs;
    total_instructions = 0;
    static_verdicts = None;
    static_distbounds = None;
    static_legality = None;
    static_race = None;
  }

let get t cid = t.by_cid.(cid)

let enter t ~cid =
  let p = t.by_cid.(cid) in
  p.nesting <- p.nesting + 1

let bump_parent (p : construct_profile) parent_cid n =
  match Hashtbl.find_opt p.parents parent_cid with
  | Some r ->
      r := !r + n;
      r
  | None ->
      let r = ref n in
      Hashtbl.add p.parents parent_cid r;
      r

let leave t ~cid ~duration ~parent_cid =
  let p = t.by_cid.(cid) in
  p.nesting <- p.nesting - 1;
  p.instances <- p.instances + 1;
  (* §III-B: aggregate only at the outermost recursion level, otherwise
     nested activations would be double-counted. *)
  if p.nesting = 0 then p.ttotal <- p.ttotal + duration;
  (* A construct's dynamic parent is almost always the same static
     construct (a loop completes under the same enclosing loop every
     iteration) — memoize the counter cell and skip the Hashtbl probe. *)
  if p.cache_parent_cid = parent_cid then
    p.cache_parent_count := !(p.cache_parent_count) + 1
  else begin
    let r = bump_parent p parent_cid 1 in
    p.cache_parent_cid <- parent_cid;
    p.cache_parent_count <- r
  end

let note_addr s addr =
  (* bounded 3-slot sample of distinct conflicting addresses *)
  match s.addrs with
  | [] -> s.addrs <- [ addr ]
  | [ a ] -> if a <> addr then s.addrs <- addr :: s.addrs
  | [ a; b ] -> if a <> addr && b <> addr then s.addrs <- addr :: s.addrs
  | _ -> ()

let record_edge t ~cid ~head_pc ~tail_pc ~kind ~tdep ~addr =
  let p = t.by_cid.(cid) in
  (* the tail is happening right now: another instance of this construct
     is active iff its recursion/iteration nesting counter is nonzero *)
  let key = Key.pack ~head_pc ~tail_pc kind in
  let s =
    if p.cache_key = key then p.cache_stats
    else begin
      let i = Etbl.slot p.edges key in
      let s =
        if Etbl.key_at p.edges i = key then Etbl.val_at p.edges i
        else begin
          let s =
            { min_tdep = tdep; count = 0; addrs = []; tail_internal = false }
          in
          Etbl.install p.edges i key s;
          s
        end
      in
      p.cache_key <- key;
      p.cache_stats <- s;
      s
    end
  in
  s.count <- s.count + 1;
  if tdep < s.min_tdep then s.min_tdep <- tdep;
  if p.nesting > 0 then s.tail_internal <- true;
  note_addr s addr

let mean_duration p = if p.instances = 0 then 0 else p.ttotal / p.instances

(* Union of two <=3-address samples, keeping the three smallest: taking
   the k smallest commutes with union, so merge stays associative and
   commutative (byte-identical profiles regardless of shard order). *)
let merge_addrs xs ys =
  let l = List.sort_uniq compare (List.rev_append xs ys) in
  List.filteri (fun i _ -> i < 3) l

let verdict_rank = function
  | Static.Depend.Must_independent -> 0
  | Static.Depend.May_dependent -> 1
  | Static.Depend.Must_dependent -> 2

(* Set union keyed by packed key. Same-key conflicts (possible only if
   someone merges profiles annotated by different analysis versions)
   resolve to the lower-ranked verdict deterministically, which keeps
   the operation associative and commutative like the rest of [merge]. *)
let merge_verdicts a b =
  match (a, b) with
  | None, v | v, None -> v
  | Some xs, Some ys ->
      let rec go xs ys acc =
        match (xs, ys) with
        | [], rest | rest, [] -> List.rev_append acc rest
        | ((kx, vx) as x) :: xs', ((ky, vy) as y) :: ys' ->
            if kx < ky then go xs' ys (x :: acc)
            else if ky < kx then go xs ys' (y :: acc)
            else
              let v = if verdict_rank vx <= verdict_rank vy then vx else vy in
              go xs' ys' ((kx, v) :: acc)
      in
      Some (go xs ys [])

let recorded_keys t =
  Array.fold_left
    (fun acc (cp : construct_profile) ->
      Etbl.fold (fun k _ acc -> k :: acc) cp.edges acc)
    [] t.by_cid
  |> List.sort_uniq compare

let attach_verdicts t classify =
  t.static_verdicts <-
    Some (List.map (fun k -> (k, classify (Key.unpack k))) (recorded_keys t))

let attach_distbounds t bound =
  t.static_distbounds <-
    Some
      (List.filter_map
         (fun k ->
           match bound (Key.unpack k) with
           | Some d when d >= 1 -> Some (k, d)
           | _ -> None)
         (recorded_keys t))

(* Same-key conflicts take the smaller bound: both sides proved their
   bound for the same program, so the min is still proven — and min is
   associative and commutative, preserving [merge]'s laws. *)
let merge_distbounds a b =
  match (a, b) with
  | None, v | v, None -> v
  | Some xs, Some ys ->
      let rec go xs ys acc =
        match (xs, ys) with
        | [], rest | rest, [] -> List.rev_append acc rest
        | ((kx, dx) as x) :: xs', ((ky, dy) as y) :: ys' ->
            if kx < ky then go xs' ys (x :: acc)
            else if ky < kx then go xs ys' (y :: acc)
            else go xs' ys' ((kx, min dx dy) :: acc)
      in
      Some (go xs ys [])

let attach_legality t classify =
  t.static_legality <-
    Some
      (List.filter_map
         (fun k ->
           match classify (Key.unpack k) with
           | Some v -> Some (k, v)
           | None -> None)
         (recorded_keys t))

(* Same-key conflicts keep the higher-ranked (weaker) verdict:
   [Serializing] claims least, so a disagreement — impossible when both
   sides analyzed the same program, conceivable for hand-edited files —
   degrades toward safety. Max is associative and commutative, so
   [merge]'s laws hold. *)
let merge_legality a b =
  match (a, b) with
  | None, v | v, None -> v
  | Some xs, Some ys ->
      let rec go xs ys acc =
        match (xs, ys) with
        | [], rest | rest, [] -> List.rev_append acc rest
        | ((kx, vx) as x) :: xs', ((ky, vy) as y) :: ys' ->
            if kx < ky then go xs' ys (x :: acc)
            else if ky < kx then go xs ys' (y :: acc)
            else
              let v =
                if
                  Static.Legality.verdict_rank vx
                  >= Static.Legality.verdict_rank vy
                then vx
                else vy
              in
              go xs' ys' ((kx, v) :: acc)
      in
      Some (go xs ys [])

let attach_race t status_of =
  t.static_race <-
    Some
      (Array.to_list t.by_cid
      |> List.filter_map (fun (cp : construct_profile) ->
             if cp.instances > 0 then
               Option.map (fun s -> (cp.cid, s)) (status_of cp.cid)
             else None))

(* Same-construct conflicts keep the higher-ranked status: [Racy]
   licenses nothing, so a disagreement — impossible when both sides
   analyzed the same program, conceivable for hand-edited files —
   degrades toward safety. Max is associative and commutative, so
   [merge]'s laws hold. *)
let merge_race a b =
  match (a, b) with
  | None, v | v, None -> v
  | Some xs, Some ys ->
      let rec go xs ys acc =
        match (xs, ys) with
        | [], rest | rest, [] -> List.rev_append acc rest
        | ((cx, sx) as x) :: xs', ((cy, sy) as y) :: ys' ->
            if cx < cy then go xs' ys (x :: acc)
            else if cy < cx then go xs ys' (y :: acc)
            else
              let s =
                if Static.Race.Status.rank sx >= Static.Race.Status.rank sy
                then sx
                else sy
              in
              go xs' ys' ((cx, s) :: acc)
      in
      Some (go xs ys [])

let merge a b =
  if a.prog.Vm.Program.code <> b.prog.Vm.Program.code then
    invalid_arg "Profile.merge: profiles of different programs";
  let out = create a.prog in
  out.total_instructions <- a.total_instructions + b.total_instructions;
  out.static_verdicts <- merge_verdicts a.static_verdicts b.static_verdicts;
  out.static_distbounds <-
    merge_distbounds a.static_distbounds b.static_distbounds;
  out.static_legality <- merge_legality a.static_legality b.static_legality;
  out.static_race <- merge_race a.static_race b.static_race;
  Array.iteri
    (fun cid (dst : construct_profile) ->
      let add (src : construct_profile) =
        dst.ttotal <- dst.ttotal + src.ttotal;
        dst.instances <- dst.instances + src.instances;
        Etbl.iter
          (fun key (s : edge_stats) ->
            match Etbl.find_opt dst.edges key with
            | Some d ->
                d.count <- d.count + s.count;
                if s.min_tdep < d.min_tdep then d.min_tdep <- s.min_tdep;
                if s.tail_internal then d.tail_internal <- true;
                d.addrs <- merge_addrs d.addrs s.addrs
            | None ->
                Etbl.add dst.edges key
                  {
                    min_tdep = s.min_tdep;
                    count = s.count;
                    addrs = merge_addrs s.addrs [];
                    tail_internal = s.tail_internal;
                  })
          src.edges;
        Hashtbl.iter
          (fun parent n -> ignore (bump_parent dst parent !n))
          src.parents
      in
      add a.by_cid.(cid);
      add b.by_cid.(cid))
    out.by_cid;
  out

let iter_edges p f = Etbl.iter (fun k s -> f (Key.unpack k) s) p.edges
let fold_edges p f acc = Etbl.fold (fun k s acc -> f (Key.unpack k) s acc) p.edges acc
let num_edges p = Etbl.length p.edges

let find_edge p ~head_pc ~tail_pc kind =
  Etbl.find_opt p.edges (Key.pack ~head_pc ~tail_pc kind)

let edges_sorted p =
  Etbl.fold (fun k v acc -> (k, v) :: acc) p.edges []
  |> List.sort (fun (ka, a) (kb, b) ->
         match compare a.min_tdep b.min_tdep with
         | 0 -> Key.compare ka kb
         | c -> c)
  |> List.map (fun (k, v) -> (Key.unpack k, v))

let cid_of_head_pc t pc =
  if pc < 0 || pc >= Array.length t.prog.cid_of_pc then None
  else
    let cid = t.prog.cid_of_pc.(pc) in
    if cid < 0 then None else Some cid
