type issue = { cid : int; key : Profile.edge_key; reason : string }

let pp_issue ppf { cid; key; reason } =
  Format.fprintf ppf "construct %d: %d -> %d %s: %s" cid key.Profile.head_pc
    key.Profile.tail_pc
    (match key.Profile.kind with
    | Shadow.Dependence.Raw -> "RAW"
    | Shadow.Dependence.War -> "WAR"
    | Shadow.Dependence.Waw -> "WAW")
    reason

let check ?dep (profile : Profile.t) =
  let prog = profile.Profile.prog in
  let dep = match dep with Some d -> d | None -> Static.Depend.analyze prog in
  let issues = ref [] in
  let add cid key reason = issues := { cid; key; reason } :: !issues in
  (* Recorded edges vs the analysis. *)
  Array.iter
    (fun (cp : Profile.construct_profile) ->
      Profile.iter_edges cp (fun (k : Profile.edge_key) s ->
          (match
             Static.Depend.verdict dep ~kind:k.kind ~head_pc:k.head_pc
               ~tail_pc:k.tail_pc
           with
          | Static.Depend.Must_independent ->
              add cp.Profile.cid k
                (Printf.sprintf "statically impossible edge: %s"
                   (Static.Depend.explain dep ~kind:k.kind ~head_pc:k.head_pc
                      ~tail_pc:k.tail_pc))
          | Static.Depend.May_dependent | Static.Depend.Must_dependent -> ());
          (* A proven distance of [d] iterations forces at least [d]
             retired instructions between any two dynamic instances, so
             an observed minimum below it is impossible. *)
          (match
             Static.Depend.distance_bound dep ~head_pc:k.head_pc
               ~tail_pc:k.tail_pc
           with
          | Some d when s.Profile.min_tdep < d ->
              add cp.Profile.cid k
                (Printf.sprintf
                   "observed min Tdep %d below the proven static lower bound \
                    of %d iterations"
                   s.Profile.min_tdep d)
          | _ -> ());
          match Static.Depend.frame_owner dep ~head_pc:k.head_pc ~tail_pc:k.tail_pc with
          | None -> ()
          | Some fid ->
              (* Both endpoints live in one activation frame of [fid]:
                 frame release invalidates their shadow state, so the
                 edge is confined to a single activation. Receivers must
                 be completed constructs inside it — loops/conditionals
                 of [fid]. The activation's own CProc (and everything
                 outer) is still active when the tail executes, so it
                 can never legitimately receive such an edge. *)
              let c = prog.Vm.Program.constructs.(cp.Profile.cid) in
              if c.Vm.Program.fid <> fid then
                add cp.Profile.cid k
                  (Printf.sprintf
                     "own-frame edge of function %d attributed to a construct \
                      of function %d"
                     fid c.Vm.Program.fid)
              else if c.Vm.Program.kind = Vm.Program.CProc then
                add cp.Profile.cid k
                  "own-frame edge attributed to the enclosing procedure \
                   construct (its activation cannot have completed)"))
    profile.Profile.by_cid;
  (* Stored verdicts vs recomputed ones. *)
  (match profile.Profile.static_verdicts with
  | None -> ()
  | Some stored ->
      let tbl = Hashtbl.create (List.length stored) in
      List.iter (fun (key, v) -> Hashtbl.replace tbl key v) stored;
      let recorded = Hashtbl.create 64 in
      Array.iter
        (fun (cp : Profile.construct_profile) ->
          Profile.iter_edges cp (fun (k : Profile.edge_key) _ ->
              let key = Profile.Key.pack ~head_pc:k.head_pc ~tail_pc:k.tail_pc k.kind in
              if not (Hashtbl.mem recorded key) then begin
                Hashtbl.add recorded key ();
                match Hashtbl.find_opt tbl key with
                | None -> add (-1) k "recorded edge has no stored verdict"
                | Some v ->
                    let v' =
                      Static.Depend.verdict dep ~kind:k.kind ~head_pc:k.head_pc
                        ~tail_pc:k.tail_pc
                    in
                    if v <> v' then
                      add (-1) k
                        (Printf.sprintf
                           "stored verdict %s disagrees with analysis %s"
                           (Static.Depend.verdict_to_string v)
                           (Static.Depend.verdict_to_string v'))
              end))
        profile.Profile.by_cid;
      List.iter
        (fun (key, _) ->
          if not (Hashtbl.mem recorded key) then
            add (-1) (Profile.Key.unpack key)
              "stored verdict for an edge the profile does not record")
        stored);
  (* Stored distance bounds vs recomputed ones and observed minima. *)
  (match profile.Profile.static_distbounds with
  | None -> ()
  | Some stored ->
      let tbl = Hashtbl.create 16 in
      List.iter (fun (key, d) -> Hashtbl.replace tbl key d) stored;
      let recorded = Hashtbl.create 64 in
      Array.iter
        (fun (cp : Profile.construct_profile) ->
          Profile.iter_edges cp (fun (k : Profile.edge_key) s ->
              let key =
                Profile.Key.pack ~head_pc:k.head_pc ~tail_pc:k.tail_pc k.kind
              in
              if not (Hashtbl.mem recorded key) then begin
                Hashtbl.add recorded key ();
                let stored_d = Hashtbl.find_opt tbl key in
                let fresh_d =
                  Static.Depend.distance_bound dep ~head_pc:k.head_pc
                    ~tail_pc:k.tail_pc
                in
                (match (stored_d, fresh_d) with
                | Some d, Some d' when d <> d' ->
                    add (-1) k
                      (Printf.sprintf
                         "stored distance bound %d disagrees with analysis %d"
                         d d')
                | Some d, None ->
                    add (-1) k
                      (Printf.sprintf
                         "stored distance bound %d the analysis cannot prove"
                         d)
                | None, Some d' ->
                    add (-1) k
                      (Printf.sprintf
                         "recorded edge is missing its stored distance bound \
                          (analysis proves %d)"
                         d')
                | _ -> ());
                match stored_d with
                | Some d when s.Profile.min_tdep < d ->
                    add (-1) k
                      (Printf.sprintf
                         "stored distance bound %d contradicts the observed \
                          min Tdep %d"
                         d s.Profile.min_tdep)
                | _ -> ()
              end))
        profile.Profile.by_cid;
      List.iter
        (fun (key, _) ->
          if not (Hashtbl.mem recorded key) then
            add (-1) (Profile.Key.unpack key)
              "stored distance bound for an edge the profile does not record")
        stored);
  List.sort
    (fun a b ->
      match compare a.cid b.cid with
      | 0 ->
          Profile.Key.compare
            (Profile.Key.pack ~head_pc:a.key.Profile.head_pc
               ~tail_pc:a.key.Profile.tail_pc a.key.Profile.kind)
            (Profile.Key.pack ~head_pc:b.key.Profile.head_pc
               ~tail_pc:b.key.Profile.tail_pc b.key.Profile.kind)
      | c -> c)
    !issues
