type category =
  | Impossible_edge
  | Distance_violation
  | Frame_misattribution
  | Verdict_mismatch
  | Distbound_mismatch
  | Legality_mismatch
  | Legality_violation
  | Race_mismatch

let category_to_string = function
  | Impossible_edge -> "impossible-edge"
  | Distance_violation -> "distance-violation"
  | Frame_misattribution -> "frame-misattribution"
  | Verdict_mismatch -> "verdict-mismatch"
  | Distbound_mismatch -> "distbound-mismatch"
  | Legality_mismatch -> "legality-mismatch"
  | Legality_violation -> "legality-violation"
  | Race_mismatch -> "race-mismatch"

let all_categories =
  [
    Impossible_edge;
    Distance_violation;
    Frame_misattribution;
    Verdict_mismatch;
    Distbound_mismatch;
    Legality_mismatch;
    Legality_violation;
    Race_mismatch;
  ]

type issue = {
  cid : int;
  key : Profile.edge_key;
  category : category;
  reason : string;
}

let pp_issue ppf { cid; key; reason; _ } =
  Format.fprintf ppf "construct %d: %d -> %d %s: %s" cid key.Profile.head_pc
    key.Profile.tail_pc
    (match key.Profile.kind with
    | Shadow.Dependence.Raw -> "RAW"
    | Shadow.Dependence.War -> "WAR"
    | Shadow.Dependence.Waw -> "WAW")
    reason

let check ?dep (profile : Profile.t) =
  let prog = profile.Profile.prog in
  let dep = match dep with Some d -> d | None -> Static.Depend.analyze prog in
  let legality = Static.Depend.legality dep in
  let issues = ref [] in
  let add cid key category reason =
    issues := { cid; key; category; reason } :: !issues
  in
  (* Recorded edges vs the analysis. *)
  Array.iter
    (fun (cp : Profile.construct_profile) ->
      Profile.iter_edges cp (fun (k : Profile.edge_key) s ->
          (match
             Static.Depend.verdict dep ~kind:k.kind ~head_pc:k.head_pc
               ~tail_pc:k.tail_pc
           with
          | Static.Depend.Must_independent ->
              add cp.Profile.cid k Impossible_edge
                (Printf.sprintf "statically impossible edge: %s"
                   (Static.Depend.explain dep ~kind:k.kind ~head_pc:k.head_pc
                      ~tail_pc:k.tail_pc))
          | Static.Depend.May_dependent | Static.Depend.Must_dependent -> ());
          (* A proven distance of [d] iterations forces at least [d]
             retired instructions between any two dynamic instances, so
             an observed minimum below it is impossible. *)
          (match
             Static.Depend.distance_bound dep ~head_pc:k.head_pc
               ~tail_pc:k.tail_pc
           with
          | Some d when s.Profile.min_tdep < d ->
              add cp.Profile.cid k Distance_violation
                (Printf.sprintf
                   "observed min Tdep %d below the proven static lower bound \
                    of %d iterations"
                   s.Profile.min_tdep d)
          | _ -> ());
          match Static.Depend.frame_owner dep ~head_pc:k.head_pc ~tail_pc:k.tail_pc with
          | None -> ()
          | Some fid ->
              (* Both endpoints live in one activation frame of [fid]:
                 frame release invalidates their shadow state, so the
                 edge is confined to a single activation. Receivers must
                 be completed constructs inside it — loops/conditionals
                 of [fid]. The activation's own CProc (and everything
                 outer) is still active when the tail executes, so it
                 can never legitimately receive such an edge. *)
              let c = prog.Vm.Program.constructs.(cp.Profile.cid) in
              if c.Vm.Program.fid <> fid then
                add cp.Profile.cid k Frame_misattribution
                  (Printf.sprintf
                     "own-frame edge of function %d attributed to a construct \
                      of function %d"
                     fid c.Vm.Program.fid)
              else if c.Vm.Program.kind = Vm.Program.CProc then
                add cp.Profile.cid k Frame_misattribution
                  "own-frame edge attributed to the enclosing procedure \
                   construct (its activation cannot have completed)"))
    profile.Profile.by_cid;
  (* Stored verdicts vs recomputed ones. *)
  (match profile.Profile.static_verdicts with
  | None -> ()
  | Some stored ->
      let tbl = Hashtbl.create (List.length stored) in
      List.iter (fun (key, v) -> Hashtbl.replace tbl key v) stored;
      let recorded = Hashtbl.create 64 in
      Array.iter
        (fun (cp : Profile.construct_profile) ->
          Profile.iter_edges cp (fun (k : Profile.edge_key) _ ->
              let key = Profile.Key.pack ~head_pc:k.head_pc ~tail_pc:k.tail_pc k.kind in
              if not (Hashtbl.mem recorded key) then begin
                Hashtbl.add recorded key ();
                match Hashtbl.find_opt tbl key with
                | None ->
                    add (-1) k Verdict_mismatch
                      "recorded edge has no stored verdict"
                | Some v ->
                    let v' =
                      Static.Depend.verdict dep ~kind:k.kind ~head_pc:k.head_pc
                        ~tail_pc:k.tail_pc
                    in
                    if v <> v' then
                      add (-1) k Verdict_mismatch
                        (Printf.sprintf
                           "stored verdict %s disagrees with analysis %s"
                           (Static.Depend.verdict_to_string v)
                           (Static.Depend.verdict_to_string v'))
              end))
        profile.Profile.by_cid;
      List.iter
        (fun (key, _) ->
          if not (Hashtbl.mem recorded key) then
            add (-1) (Profile.Key.unpack key) Verdict_mismatch
              "stored verdict for an edge the profile does not record")
        stored);
  (* Stored distance bounds vs recomputed ones and observed minima. *)
  (match profile.Profile.static_distbounds with
  | None -> ()
  | Some stored ->
      let tbl = Hashtbl.create 16 in
      List.iter (fun (key, d) -> Hashtbl.replace tbl key d) stored;
      let recorded = Hashtbl.create 64 in
      Array.iter
        (fun (cp : Profile.construct_profile) ->
          Profile.iter_edges cp (fun (k : Profile.edge_key) s ->
              let key =
                Profile.Key.pack ~head_pc:k.head_pc ~tail_pc:k.tail_pc k.kind
              in
              if not (Hashtbl.mem recorded key) then begin
                Hashtbl.add recorded key ();
                let stored_d = Hashtbl.find_opt tbl key in
                let fresh_d =
                  Static.Depend.distance_bound dep ~head_pc:k.head_pc
                    ~tail_pc:k.tail_pc
                in
                (match (stored_d, fresh_d) with
                | Some d, Some d' when d <> d' ->
                    add (-1) k Distbound_mismatch
                      (Printf.sprintf
                         "stored distance bound %d disagrees with analysis %d"
                         d d')
                | Some d, None ->
                    add (-1) k Distbound_mismatch
                      (Printf.sprintf
                         "stored distance bound %d the analysis cannot prove"
                         d)
                | None, Some d' ->
                    add (-1) k Distbound_mismatch
                      (Printf.sprintf
                         "recorded edge is missing its stored distance bound \
                          (analysis proves %d)"
                         d')
                | _ -> ());
                match stored_d with
                | Some d when s.Profile.min_tdep < d ->
                    add (-1) k Distance_violation
                      (Printf.sprintf
                         "stored distance bound %d contradicts the observed \
                          min Tdep %d"
                         d s.Profile.min_tdep)
                | _ -> ()
              end))
        profile.Profile.by_cid;
      List.iter
        (fun (key, _) ->
          if not (Hashtbl.mem recorded key) then
            add (-1) (Profile.Key.unpack key) Distbound_mismatch
              "stored distance bound for an edge the profile does not record")
        stored);
  (* Stored legality verdicts vs recomputed ones, plus the dynamic
     cross-check: a [Privatizable] claim means every in-loop read of the
     cell sees a same-iteration in-loop write — so a recorded RAW edge
     on that cell whose tail sits inside the proof's loop span while its
     head sits outside is an observed read-before-write iteration (the
     read saw a pre-loop writer), refuting the claim with dynamic
     evidence regardless of what the analysis recomputes. *)
  (match profile.Profile.static_legality with
  | None -> ()
  | Some stored ->
      let tbl = Hashtbl.create 16 in
      List.iter (fun (key, v) -> Hashtbl.replace tbl key v) stored;
      let recorded = Hashtbl.create 64 in
      Array.iter
        (fun (cp : Profile.construct_profile) ->
          Profile.iter_edges cp (fun (k : Profile.edge_key) _ ->
              let key =
                Profile.Key.pack ~head_pc:k.head_pc ~tail_pc:k.tail_pc k.kind
              in
              if not (Hashtbl.mem recorded key) then begin
                Hashtbl.add recorded key ();
                let stored_v = Hashtbl.find_opt tbl key in
                let fresh_v =
                  Static.Legality.classify legality ~kind:k.kind
                    ~head_pc:k.head_pc ~tail_pc:k.tail_pc
                in
                match (stored_v, fresh_v) with
                | Some v, Some v' when v <> v' ->
                    add (-1) k Legality_mismatch
                      (Printf.sprintf
                         "stored legality %s disagrees with analysis %s"
                         (Static.Legality.verdict_to_string v)
                         (Static.Legality.verdict_to_string v'))
                | Some v, None ->
                    add (-1) k Legality_mismatch
                      (Printf.sprintf
                         "stored legality %s for an edge the analysis does \
                          not classify"
                         (Static.Legality.verdict_to_string v))
                | None, Some v' ->
                    add (-1) k Legality_mismatch
                      (Printf.sprintf
                         "recorded edge is missing its stored legality \
                          verdict (analysis says %s)"
                         (Static.Legality.verdict_to_string v'))
                | Some _, Some _ | None, None -> ()
              end))
        profile.Profile.by_cid;
      List.iter
        (fun (key, v) ->
          let k = Profile.Key.unpack key in
          if not (Hashtbl.mem recorded key) then
            add (-1) k Legality_mismatch
              "stored legality verdict for an edge the profile does not record"
          else if v = Static.Legality.Privatizable then
            match
              Static.Legality.proof legality ~kind:k.Profile.kind
                ~head_pc:k.Profile.head_pc ~tail_pc:k.Profile.tail_pc
            with
            | Some
                { Static.Legality.cell = Some cell; span = Some (lo, hi); _ }
              ->
                Array.iter
                  (fun (cp : Profile.construct_profile) ->
                    Profile.iter_edges cp (fun (e : Profile.edge_key) s ->
                        if
                          e.Profile.kind = Shadow.Dependence.Raw
                          && e.Profile.tail_pc >= lo
                          && e.Profile.tail_pc <= hi
                          && (e.Profile.head_pc < lo || e.Profile.head_pc > hi)
                          && List.mem cell s.Profile.addrs
                        then
                          add cp.Profile.cid e Legality_violation
                            (Printf.sprintf
                               "observed read-before-write iteration refutes \
                                the stored Privatizable verdict for cell %d \
                                (in-loop read at pc %d saw a writer at pc %d \
                                outside the loop)"
                               cell e.Profile.tail_pc e.Profile.head_pc)))
                  profile.Profile.by_cid
            | _ -> ())
        stored);
  (* Stored race statuses vs recomputed ones. A flipped status is the
     dangerous corruption this block exists for: a [racy] construct
     rewritten [race-free] would license parsim to drop its ordering
     edges. Construct-level issues reuse the edge-key slot with a
     synthetic self-edge at the construct's head pc. *)
  (match profile.Profile.static_race with
  | None -> ()
  | Some stored ->
      let race = Static.Depend.race dep in
      let key_of (c : Vm.Program.construct_info) =
        {
          Profile.head_pc = c.Vm.Program.head_pc;
          tail_pc = c.Vm.Program.head_pc;
          kind = Shadow.Dependence.Raw;
        }
      in
      let ncid = Array.length prog.Vm.Program.constructs in
      let stored_tbl = Hashtbl.create 16 in
      List.iter
        (fun (cid, s) ->
          if cid < 0 || cid >= ncid then
            add cid
              { Profile.head_pc = 0; tail_pc = 0; kind = Shadow.Dependence.Raw }
              Race_mismatch
              (Printf.sprintf "stored race status for unknown construct %d" cid)
          else begin
            Hashtbl.replace stored_tbl cid s;
            let c = prog.Vm.Program.constructs.(cid) in
            let cp = Profile.get profile cid in
            if cp.Profile.instances = 0 then
              add cid (key_of c) Race_mismatch
                "stored race status for a construct the profile does not record"
            else
              match Static.Race.status race ~cid with
              | None ->
                  add cid (key_of c) Race_mismatch
                    (Printf.sprintf
                       "stored race status %s for a construct the detector \
                        does not classify"
                       (Static.Race.Status.to_string s))
              | Some s' ->
                  if s <> s' then
                    add cid (key_of c) Race_mismatch
                      (Printf.sprintf
                         "stored race status %s disagrees with analysis %s"
                         (Static.Race.Status.to_string s)
                         (Static.Race.Status.to_string s'))
          end)
        stored;
      Array.iter
        (fun (cp : Profile.construct_profile) ->
          if
            cp.Profile.instances > 0
            && (not (Hashtbl.mem stored_tbl cp.Profile.cid))
            && Static.Race.status race ~cid:cp.Profile.cid <> None
          then
            add cp.Profile.cid
              (key_of prog.Vm.Program.constructs.(cp.Profile.cid))
              Race_mismatch "recorded construct is missing its stored race status")
        profile.Profile.by_cid);
  List.sort
    (fun a b ->
      match compare a.cid b.cid with
      | 0 -> (
          match
            Profile.Key.compare
              (Profile.Key.pack ~head_pc:a.key.Profile.head_pc
                 ~tail_pc:a.key.Profile.tail_pc a.key.Profile.kind)
              (Profile.Key.pack ~head_pc:b.key.Profile.head_pc
                 ~tail_pc:b.key.Profile.tail_pc b.key.Profile.kind)
          with
          | 0 -> compare a.category b.category
          | c -> c)
      | c -> c)
    !issues
