type issue = { cid : int; key : Profile.edge_key; reason : string }

let pp_issue ppf { cid; key; reason } =
  Format.fprintf ppf "construct %d: %d -> %d %s: %s" cid key.Profile.head_pc
    key.Profile.tail_pc
    (match key.Profile.kind with
    | Shadow.Dependence.Raw -> "RAW"
    | Shadow.Dependence.War -> "WAR"
    | Shadow.Dependence.Waw -> "WAW")
    reason

let check ?dep (profile : Profile.t) =
  let prog = profile.Profile.prog in
  let dep = match dep with Some d -> d | None -> Static.Depend.analyze prog in
  let issues = ref [] in
  let add cid key reason = issues := { cid; key; reason } :: !issues in
  (* Recorded edges vs the analysis. *)
  Array.iter
    (fun (cp : Profile.construct_profile) ->
      Profile.iter_edges cp (fun (k : Profile.edge_key) _ ->
          (match
             Static.Depend.verdict dep ~kind:k.kind ~head_pc:k.head_pc
               ~tail_pc:k.tail_pc
           with
          | Static.Depend.Must_independent ->
              add cp.Profile.cid k
                (Printf.sprintf "statically impossible edge: %s"
                   (Static.Depend.explain dep ~kind:k.kind ~head_pc:k.head_pc
                      ~tail_pc:k.tail_pc))
          | Static.Depend.May_dependent | Static.Depend.Must_dependent -> ());
          match Static.Depend.frame_owner dep ~head_pc:k.head_pc ~tail_pc:k.tail_pc with
          | None -> ()
          | Some fid ->
              (* Both endpoints live in one activation frame of [fid]:
                 frame release invalidates their shadow state, so the
                 edge is confined to a single activation. Receivers must
                 be completed constructs inside it — loops/conditionals
                 of [fid]. The activation's own CProc (and everything
                 outer) is still active when the tail executes, so it
                 can never legitimately receive such an edge. *)
              let c = prog.Vm.Program.constructs.(cp.Profile.cid) in
              if c.Vm.Program.fid <> fid then
                add cp.Profile.cid k
                  (Printf.sprintf
                     "own-frame edge of function %d attributed to a construct \
                      of function %d"
                     fid c.Vm.Program.fid)
              else if c.Vm.Program.kind = Vm.Program.CProc then
                add cp.Profile.cid k
                  "own-frame edge attributed to the enclosing procedure \
                   construct (its activation cannot have completed)"))
    profile.Profile.by_cid;
  (* Stored verdicts vs recomputed ones. *)
  (match profile.Profile.static_verdicts with
  | None -> ()
  | Some stored ->
      let tbl = Hashtbl.create (List.length stored) in
      List.iter (fun (key, v) -> Hashtbl.replace tbl key v) stored;
      let recorded = Hashtbl.create 64 in
      Array.iter
        (fun (cp : Profile.construct_profile) ->
          Profile.iter_edges cp (fun (k : Profile.edge_key) _ ->
              let key = Profile.Key.pack ~head_pc:k.head_pc ~tail_pc:k.tail_pc k.kind in
              if not (Hashtbl.mem recorded key) then begin
                Hashtbl.add recorded key ();
                match Hashtbl.find_opt tbl key with
                | None -> add (-1) k "recorded edge has no stored verdict"
                | Some v ->
                    let v' =
                      Static.Depend.verdict dep ~kind:k.kind ~head_pc:k.head_pc
                        ~tail_pc:k.tail_pc
                    in
                    if v <> v' then
                      add (-1) k
                        (Printf.sprintf
                           "stored verdict %s disagrees with analysis %s"
                           (Static.Depend.verdict_to_string v)
                           (Static.Depend.verdict_to_string v'))
              end))
        profile.Profile.by_cid;
      List.iter
        (fun (key, _) ->
          if not (Hashtbl.mem recorded key) then
            add (-1) (Profile.Key.unpack key)
              "stored verdict for an edge the profile does not record")
        stored);
  List.sort
    (fun a b ->
      match compare a.cid b.cid with
      | 0 ->
          Profile.Key.compare
            (Profile.Key.pack ~head_pc:a.key.Profile.head_pc
               ~tail_pc:a.key.Profile.tail_pc a.key.Profile.kind)
            (Profile.Key.pack ~head_pc:b.key.Profile.head_pc
               ~tail_pc:b.key.Profile.tail_pc b.key.Profile.kind)
      | c -> c)
    !issues
