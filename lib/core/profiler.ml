module Node = Indexing.Node

type stats = {
  instructions : int;
  static_constructs : int;
  dynamic_constructs : int;
  deps_detected : int;
  shadow_events : int;
  pool_allocated : int;
  pool_reused : int;
  forced_pops : int;
}

type result = {
  profile : Profile.t;
  stats : stats;
  run : Vm.Machine.result;
}

let cid_of_label (prog : Vm.Program.t) label = prog.cid_of_pc.(label)

(* Build the instrumentation (hooks + a finisher that assembles the
   result); shared between the live run and offline trace replay. *)
let make ?scan_limit ?pool_capacity (prog : Vm.Program.t) =
  let analysis = Cfa.Analysis.analyze prog in
  let profile = Profile.create prog in
  let pops = ref 0 in
  let on_push (c : Node.t) =
    Profile.enter profile ~cid:(cid_of_label prog c.label)
  in
  let on_pop (c : Node.t) =
    incr pops;
    let parent_cid =
      match c.parent with
      | Some p -> cid_of_label prog p.Node.label
      | None -> -1
    in
    Profile.leave profile
      ~cid:(cid_of_label prog c.label)
      ~duration:(Node.duration c) ~parent_cid
  in
  let tree =
    Indexing.Index_tree.create ?scan_limit ?pool_capacity ~on_push ~on_pop ()
  in
  let rules = Indexing.Rules.create ~ipdom:analysis.Cfa.Analysis.ipdom_of_pc ~tree in
  (* Table II: attribute a detected dependence to every completed
     enclosing construct of its head, bottom-up. The sink receives the
     edge unboxed, so the per-dependence walk performs no allocation. *)
  let sink ~kind ~head_pc ~head_time ~head_node ~tail_pc ~tail_time
      ~tail_node:_ ~addr =
    let tdep = tail_time - head_time in
    let rec walk (c : Node.t) =
      if Node.covers c head_time then begin
        Profile.record_edge profile
          ~cid:(cid_of_label prog c.label)
          ~head_pc ~tail_pc ~kind ~tdep ~addr;
        match c.parent with Some p -> walk p | None -> ()
      end
    in
    walk head_node
  in
  let shadow = Shadow.Shadow_memory.create ~sink () in
  let enclosing () =
    match Indexing.Index_tree.top tree with
    | Some c -> c
    | None -> invalid_arg "Profiler: memory event outside any construct"
  in
  let hooks =
    {
      Vm.Hooks.on_instr = (fun ~pc -> Indexing.Rules.on_instr rules ~pc);
      on_read =
        (fun ~pc ~addr ->
          Shadow.Shadow_memory.read shadow ~addr ~pc
            ~time:(Indexing.Index_tree.now tree)
            ~node:(enclosing ()));
      on_write =
        (fun ~pc ~addr ->
          Shadow.Shadow_memory.write shadow ~addr ~pc
            ~time:(Indexing.Index_tree.now tree)
            ~node:(enclosing ()));
      on_branch =
        (fun ~pc ~kind ~cid:_ ~taken ->
          Indexing.Rules.on_branch rules ~pc ~kind ~taken);
      on_call =
        (fun ~pc ~fid:_ -> Indexing.Rules.on_call rules ~entry_pc:pc);
      on_ret = (fun ~pc:_ ~fid:_ -> Indexing.Rules.on_ret rules);
      on_frame_release =
        (fun ~base ~size -> Shadow.Shadow_memory.clear_range shadow ~base ~size);
    }
  in
  let finish (run : Vm.Machine.result) =
    Indexing.Rules.finish rules;
    profile.Profile.total_instructions <- run.Vm.Machine.instructions;
    let stats =
      {
        instructions = run.Vm.Machine.instructions;
        static_constructs = Array.length prog.constructs;
        dynamic_constructs = !pops;
        deps_detected = Shadow.Shadow_memory.deps_emitted shadow;
        shadow_events = Shadow.Shadow_memory.events shadow;
        pool_allocated = Indexing.Index_tree.pool_allocated tree;
        pool_reused = Indexing.Index_tree.pool_reused tree;
        forced_pops = Indexing.Rules.forced_pops rules;
      }
    in
    { profile; stats; run }
  in
  (hooks, finish)

let run ?fuel ?scan_limit ?pool_capacity ?(trace_locals = false)
    (prog : Vm.Program.t) =
  let hooks, finish = make ?scan_limit ?pool_capacity prog in
  finish (Vm.Machine.run_hooked ~trace_locals ?fuel hooks prog)

let run_trace ?scan_limit ?pool_capacity (trace : Vm.Trace.t)
    (prog : Vm.Program.t) =
  let hooks, finish = make ?scan_limit ?pool_capacity prog in
  Vm.Trace.replay trace hooks;
  finish (Vm.Trace.result trace)

let run_source ?fuel ?scan_limit ?pool_capacity ?trace_locals src =
  run ?fuel ?scan_limit ?pool_capacity ?trace_locals
    (Vm.Compile.compile_source src)
