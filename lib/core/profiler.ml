module Node = Indexing.Node

type stats = {
  instructions : int;
  static_constructs : int;
  dynamic_constructs : int;
  deps_detected : int;
  shadow_events : int;
  pool_allocated : int;
  pool_reused : int;
  forced_pops : int;
  pruned_pcs : int;
  event_pcs : int;
}

type result = {
  profile : Profile.t;
  stats : stats;
  run : Vm.Machine.result;
  obs : Obs.Registry.t;
}

let telemetry r = Obs.Registry.snapshot r.obs

let cid_of_label (prog : Vm.Program.t) label = prog.cid_of_pc.(label)

(* Precomputed static facts: the CFA, the dependence analysis, and the
   IR-widened prune mask. Everything inside is immutable after
   construction, so one [facts] value can be shared by many runs — and
   across domains — of programs with the same code: the registry
   service's incremental re-profiling (new input, same program) skips
   the whole static pipeline. [code_fp] guards against misuse: a run
   handed facts for a different program fails loudly instead of
   attaching another program's verdicts. *)
type facts = {
  f_analysis : Cfa.Analysis.t;
  f_dep : Static.Depend.t;
  f_prune : bool array;  (* widen_prune mask, ready for the engine *)
  f_refined : int;  (* pcs the IR widening added over the base mask *)
  code_fp : string;
}

let prepare_facts (prog : Vm.Program.t) =
  let f_analysis = Cfa.Analysis.analyze prog in
  let f_dep = Static.Depend.analyze ~analysis:f_analysis prog in
  let f_prune, f_refined =
    Static.Depend.widen_prune f_dep ~region_hint:(Ir.Refine.region_hints prog)
  in
  { f_analysis; f_dep; f_prune; f_refined; code_fp = Profile_io.fingerprint prog }

let facts_fingerprint f = f.code_fp

(* Build the instrumentation (hooks + a finisher that assembles the
   result); shared between the live run and offline trace replay.
   [static] enables the static dependence layer: the finisher then
   classifies every recorded edge into the profile's verdict list, and
   the returned oracle lets the caller prune hooks. It is on for every
   default-mode profile — including trace replay, whose traces record
   the default event set — and off only under [trace_locals], whose
   extra local events the verdicts do not model. *)
let make ?scan_limit ?pool_capacity ?obs ?facts ?(static = true)
    ?(legality = true) ?(race = true) (prog : Vm.Program.t) =
  let reg = match obs with Some r -> r | None -> Obs.Registry.create () in
  let wall = Obs.Registry.timer reg "profiler.wall" in
  Obs.Timer.start wall;
  (match facts with
  | Some f when f.code_fp <> Profile_io.fingerprint prog ->
      invalid_arg "Profiler: facts were prepared for a different program"
  | _ -> ());
  let analysis =
    match facts with
    | Some f -> f.f_analysis
    | None -> Cfa.Analysis.analyze prog
  in
  let dep =
    if not static then None
    else
      Some
        (match facts with
        | Some f -> f.f_dep
        | None -> Static.Depend.analyze ~analysis prog)
  in
  (* Prune coverage is a property of the analysis, not of any engine or
     run mode — record it the moment the analysis exists, so every bench
     section's telemetry shows the same engine-independent figures (the
     BENCH_7 register+ring snapshot is no special case), with the event-pc
     denominator alongside so a 0 reads as "0 of N prunable", not as a
     missing gauge. *)
  (match dep with
  | Some d ->
      Obs.Gauge.set
        (Obs.Registry.gauge reg "static.pruned_pcs")
        (Static.Depend.pruned_count d);
      Obs.Gauge.set
        (Obs.Registry.gauge reg "static.event_pcs")
        (Static.Depend.event_count d)
  | None -> ());
  let profile = Profile.create prog in
  let pops = ref 0 in
  let on_push (c : Node.t) =
    Profile.enter profile ~cid:(cid_of_label prog c.label)
  in
  let on_pop (c : Node.t) =
    incr pops;
    let parent_cid =
      match c.parent with
      | Some p -> cid_of_label prog p.Node.label
      | None -> -1
    in
    Profile.leave profile
      ~cid:(cid_of_label prog c.label)
      ~duration:(Node.duration c) ~parent_cid
  in
  let tree =
    Indexing.Index_tree.create ?scan_limit ?pool_capacity ~on_push ~on_pop ()
  in
  let rules = Indexing.Rules.create ~ipdom:analysis.Cfa.Analysis.ipdom_of_pc ~tree in
  (* Table II: attribute a detected dependence to every completed
     enclosing construct of its head, bottom-up. The sink receives the
     edge unboxed, so the per-dependence walk performs no allocation. *)
  let walk_depth = Obs.Registry.histogram reg "profiler.walk_depth" in
  (* [depth] counts constructs that received the edge so far, so the
     histogram records exactly how far each attribution walk climbed.
     [walk] closes only over per-run state, never over per-dependence
     values: a closure allocation here would run once per attributed
     dependence (~1.6M times on gzip) and dominate minor-heap traffic. *)
  let rec walk ~kind ~head_pc ~tail_pc ~tdep ~addr ~head_time (c : Node.t)
      depth =
    if Node.covers c head_time then begin
      Profile.record_edge profile
        ~cid:(cid_of_label prog c.label)
        ~head_pc ~tail_pc ~kind ~tdep ~addr;
      match c.parent with
      | Some p -> walk ~kind ~head_pc ~tail_pc ~tdep ~addr ~head_time p (depth + 1)
      | None -> Obs.Histogram.observe walk_depth (depth + 1)
    end
    else Obs.Histogram.observe walk_depth depth
  in
  let sink ~kind ~head_pc ~head_time ~head_node ~tail_pc ~tail_time
      ~tail_node:_ ~addr =
    walk ~kind ~head_pc ~tail_pc
      ~tdep:(tail_time - head_time)
      ~addr ~head_time head_node 0
  in
  let shadow = Shadow.Shadow_memory.create ~sink () in
  Shadow.Shadow_memory.register_obs shadow reg;
  Indexing.Index_tree.register_obs tree reg;
  let enclosing () =
    (* peek, not top: one memory event per load/store makes the option
       boxing in [top] a measurable allocation source *)
    if Indexing.Index_tree.depth tree = 0 then
      invalid_arg "Profiler: memory event outside any construct"
    else Indexing.Index_tree.peek tree
  in
  (* The bulk clock sink for the register engine's event ring: a drained
     Instr_range event covers a whole IR segment, and ranges that Rules
     proves free of construct joins advance the clock in one add instead
     of seg_len hook calls. Exactly equivalent to per-pc [on_instr].
     [range_has_target] and [set_time] together opt the profiler into
     the ring's thinned stream: segments with no rule-(5) join point are
     elided from the ring entirely, and their clock advance is restored
     from the stamps carried by the events around them. *)
  let instr_range ~lo ~hi = Indexing.Rules.on_instr_range rules ~lo ~hi in
  let range_has_target ~lo ~hi =
    Indexing.Rules.range_has_target rules ~lo ~hi
  in
  let set_time n = Indexing.Index_tree.set_now tree n in
  let hooks =
    {
      Vm.Hooks.on_instr = (fun ~pc -> Indexing.Rules.on_instr rules ~pc);
      on_read =
        (fun ~pc ~addr ->
          Shadow.Shadow_memory.read shadow ~addr ~pc
            ~time:(Indexing.Index_tree.now tree)
            ~node:(enclosing ()));
      on_write =
        (fun ~pc ~addr ->
          Shadow.Shadow_memory.write shadow ~addr ~pc
            ~time:(Indexing.Index_tree.now tree)
            ~node:(enclosing ()));
      on_branch =
        (fun ~pc ~kind ~cid:_ ~taken ->
          Indexing.Rules.on_branch rules ~pc ~kind ~taken);
      on_call =
        (fun ~pc ~fid:_ -> Indexing.Rules.on_call rules ~entry_pc:pc);
      on_ret = (fun ~pc:_ ~fid:_ -> Indexing.Rules.on_ret rules);
      on_frame_release =
        (* A released frame is the top of the live address space, so
           clear_range takes the O(1) suffix path for large frames and
           the eager scrub for small ones — the scrub keeps the clear
           stack quiet, which keeps Shadow_memory.freshen on its
           fast path for the accesses that follow. *)
        (fun ~base ~size -> Shadow.Shadow_memory.clear_range shadow ~base ~size);
    }
  in
  let finish (run : Vm.Machine.result) =
    Indexing.Rules.finish rules;
    profile.Profile.total_instructions <- run.Vm.Machine.instructions;
    (match dep with
    | Some d ->
        Profile.attach_verdicts profile (fun (k : Profile.edge_key) ->
            Static.Depend.verdict d ~kind:k.Profile.kind
              ~head_pc:k.Profile.head_pc ~tail_pc:k.Profile.tail_pc);
        Profile.attach_distbounds profile (fun (k : Profile.edge_key) ->
            Static.Depend.distance_bound d ~head_pc:k.Profile.head_pc
              ~tail_pc:k.Profile.tail_pc);
        if legality then
          Profile.attach_legality profile (fun (k : Profile.edge_key) ->
              Static.Legality.classify (Static.Depend.legality d)
                ~kind:k.Profile.kind ~head_pc:k.Profile.head_pc
                ~tail_pc:k.Profile.tail_pc);
        if race then
          Profile.attach_race profile (fun cid ->
              Static.Race.status (Static.Depend.race d) ~cid)
    | None -> ());
    Obs.Timer.stop wall;
    (* Republish the VM's own counters (counted allocation-free inside
       the interpreter loop) so one snapshot covers every layer. *)
    let m = run.Vm.Machine.metrics in
    Obs.Counter.add (Obs.Registry.counter reg "vm.instructions")
      run.Vm.Machine.instructions;
    Obs.Counter.add (Obs.Registry.counter reg "vm.reads") m.Vm.Machine.reads;
    Obs.Counter.add (Obs.Registry.counter reg "vm.writes") m.Vm.Machine.writes;
    Obs.Counter.add (Obs.Registry.counter reg "vm.calls") m.Vm.Machine.calls;
    Obs.Counter.add (Obs.Registry.counter reg "vm.branches")
      m.Vm.Machine.branches;
    Obs.Counter.add
      (Obs.Registry.counter reg "vm.frames_released")
      m.Vm.Machine.frames_released;
    Obs.Gauge.set
      (Obs.Registry.gauge reg "vm.call_depth")
      m.Vm.Machine.max_call_depth;
    Obs.Gauge.set
      (Obs.Registry.gauge reg "vm.mem_high_water")
      m.Vm.Machine.mem_high_water;
    let stats =
      {
        instructions = run.Vm.Machine.instructions;
        static_constructs = Array.length prog.constructs;
        dynamic_constructs = !pops;
        deps_detected = Shadow.Shadow_memory.deps_emitted shadow;
        shadow_events = Shadow.Shadow_memory.events shadow;
        pool_allocated = Indexing.Index_tree.pool_allocated tree;
        pool_reused = Indexing.Index_tree.pool_reused tree;
        forced_pops = Indexing.Rules.forced_pops rules;
        pruned_pcs =
          (match dep with Some d -> Static.Depend.pruned_count d | None -> 0);
        event_pcs =
          (match dep with Some d -> Static.Depend.event_count d | None -> 0);
      }
    in
    { profile; stats; run; obs = reg }
  in
  (hooks, (instr_range, range_has_target, set_time), finish, dep)

let run ?(engine = Vm.Machine.Threaded) ?regalloc ?ring ?fuel ?scan_limit
    ?pool_capacity ?obs ?facts ?(trace_locals = false) ?(static_prune = true)
    ?legality ?race (prog : Vm.Program.t) =
  let reg = match obs with Some r -> r | None -> Obs.Registry.create () in
  let hooks, (instr_range, range_has_target, set_time), finish, dep =
    make ?scan_limit ?pool_capacity ~obs:reg ?facts ~static:(not trace_locals)
      ?legality ?race prog
  in
  (* The verdict layer runs (and is stored) whether or not pruning is
     applied — so prune-on and prune-off profiles of the same execution
     are byte-identical, which is the property `alchemist check`
     re-verifies per workload. The mask handed to the engine is the
     IR-widened one: register-IR def-use hints upgrade accesses the
     points-to layer left incomplete, proving more hooks redundant
     (Static.Depend.widen_prune). The widening is derived from the
     deterministic no-prune lowering, so every engine receives the same
     mask and the profile stays engine-independent; verdicts keep using
     the unwidened base mask. *)
  let prune =
    match dep with
    | Some d when static_prune ->
        let mask, extra =
          match facts with
          | Some f -> (f.f_prune, f.f_refined)
          | None ->
              Static.Depend.widen_prune d
                ~region_hint:(Ir.Refine.region_hints prog)
        in
        Obs.Gauge.set (Obs.Registry.gauge reg "static.refined_pcs") extra;
        Some mask
    | _ -> None
  in
  let r =
    finish
      (Ir.Engine.run_hooked ~engine ?regalloc ?ring ~instr_range
         ~range_has_target ~set_time ~trace_locals ?prune ?fuel ~obs:reg hooks
         prog)
  in
  (* Record which engine produced the events, so benchmark telemetry is
     self-describing (0 = switch, 1 = threaded, 2 = register). The
     register engine additionally publishes ir.* gauges through [reg].
     Differential telemetry comparisons filter these out — see
     test/test_engines.ml. *)
  Obs.Gauge.set
    (Obs.Registry.gauge r.obs "vm.engine")
    (match engine with
    | Vm.Machine.Switch -> 0
    | Vm.Machine.Threaded -> 1
    | Vm.Machine.Register -> 2);
  r

let run_trace ?scan_limit ?pool_capacity ?obs (trace : Vm.Trace.t)
    (prog : Vm.Program.t) =
  (* The static layer applies exactly when the trace carries the default
     event set — and then it must: the online/offline differential
     (test_trace) byte-compares the two profiles, verdict lines
     included. *)
  let hooks, _ring_sinks, finish, _dep =
    make ?scan_limit ?pool_capacity ?obs
      ~static:(not (Vm.Trace.traced_locals trace))
      prog
  in
  Vm.Trace.replay trace hooks;
  finish (Vm.Trace.result trace)

let run_source ?engine ?ring ?fuel ?scan_limit ?pool_capacity ?obs
    ?trace_locals ?static_prune ?legality ?race src =
  run ?engine ?ring ?fuel ?scan_limit ?pool_capacity ?obs ?trace_locals
    ?static_prune ?legality ?race
    (Vm.Compile.compile_source src)
