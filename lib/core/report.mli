(** Fig. 2 / Fig. 3-style textual profiles.

    Each ranked construct prints as
    ["N. Method flush_block  Tdur=643408, inst=2"] followed by its
    dependence edges as ["RAW: line 28 -> line 10  Tdep=3  *"], ascending
    by distance, with [*] marking edges that fail [Tdep > Tdur].

    When the profile carries static verdicts (any default-mode run —
    see {!Profiler.run}), every edge line ends with its
    {!Static.Depend.verdict} as a [  [must-dep]] / [  [may-dep]] column,
    so a reader can separate provable dependences from dynamic-only
    evidence. *)

val render :
  ?top:int ->
  ?max_edges:int ->
  ?kinds:Shadow.Dependence.kind list ->
  Profile.t ->
  string
(** [top] limits the number of constructs (default 10); [max_edges] the
    edges listed per construct (default 8); [kinds] filters edge kinds
    (default: RAW only, as in Fig. 2 — pass [[War; Waw]] for Fig. 3). *)

val render_construct :
  ?max_edges:int ->
  ?kinds:Shadow.Dependence.kind list ->
  Profile.t ->
  cid:int ->
  string

val line_of_pc : Profile.t -> int -> int

val name_of_addr : Vm.Program.t -> int -> string option
(** The global variable (with element offset for arrays) at an address,
    e.g. [Some "outbuf[17]"]; [None] for stack addresses. *)
