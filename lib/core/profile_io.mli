(** Profile persistence.

    A profile is written as a line-oriented text format tied to the
    program it came from by a code fingerprint, so profiles from several
    runs (different inputs) can be collected offline and merged with
    {!Profile.merge} later — the paper's "gathering and analyzing profile
    runs".

    Format (version 1):
    {v
    alchemist-profile 1
    fingerprint <hex>
    total <instructions>
    construct <cid> <ttotal> <instances>
    edge <cid> <head_pc> <tail_pc> <RAW|WAR|WAW> <min_tdep> <count> <internal:0|1> <addr>*
    parent <cid> <parent_cid> <count>
    v}

    Version 2 adds the static classification of each recorded edge
    ({!Profile.t.static_verdicts}), as key-sorted [verdict] lines between
    the [total] line and the construct records:
    {v
    verdict <head_pc> <tail_pc> <RAW|WAR|WAW> <must-indep|may-dep|must-dep>
    v}
    A profile without verdicts (e.g. recorded with [trace_locals], where
    the static model does not apply) serializes to the exact version-1
    bytes, so old files and new verdict-free files are the same format.

    Version 3 adds proven minimum iteration distances
    ({!Profile.t.static_distbounds}) as key-sorted [distbound] lines
    after the verdicts:
    {v
    distbound <head_pc> <tail_pc> <RAW|WAR|WAW> <d>
    v}
    with [d >= 1] always. A profile whose static layer proved no bounds
    serializes to the exact version-2 bytes — the version only moves
    when a [distbound] line would follow, and a version-3 file with no
    [distbound] lines normalizes back to version 2 on round-trip.

    Version 4 adds transform-legality verdicts
    ({!Profile.t.static_legality}) as key-sorted [legality] lines after
    the distbounds:
    {v
    legality <head_pc> <tail_pc> <RAW|WAR|WAW> <priv|red|serial>
    v}
    under the same rule: a profile with no legality verdicts serializes
    to byte-exact version-3 (or lower) output, and a version-4 file with
    no [legality] lines normalizes down on round-trip.

    The reader accepts all four versions and rejects lines newer than
    the declared version (e.g. [distbound] in a version-2 body), with
    1-based line numbers on every error. [distbound] and [legality]
    lines must reference edges the profile's [edge] section records —
    a line naming an unrecorded edge is rejected with its line number
    (stored [verdict] lines are exempt; the sanitizer diagnoses those). *)

val fingerprint : Vm.Program.t -> string
(** A stable hash of the code array (hex). *)

val input_fingerprint : Vm.Program.t -> string
(** A stable hash of the program's input identity: its global-segment
    size and initialized global data ([global_inits]), the only program
    components {!fingerprint} does not cover that the VM reads. The pair
    [(fingerprint, input_fingerprint)] content-addresses a profiling
    run's program+input — the registry service's cache key. *)

val hash_string : string -> string
(** The same stable (FNV-1a) hash over raw bytes, for composing cache
    keys from already-rendered components. *)

val write : Profile.t -> Buffer.t -> unit
val to_string : Profile.t -> string

val read : Vm.Program.t -> string -> (Profile.t, string) result
(** Parses a serialized profile against [prog]; fails on version or
    fingerprint mismatch, malformed or truncated input, and duplicate
    construct/edge/parent lines (which would otherwise silently overwrite
    earlier data). Error messages carry the 1-based input line number,
    e.g. ["line 7: duplicate construct 3"]. *)

val save : Profile.t -> string -> unit
(** Write to a file. *)

val load : Vm.Program.t -> string -> (Profile.t, string) result
(** Read from a file. *)
