(** Transformation advice — the paper's "Usability" contribution.

    From a construct's profile, derive the §II guidance as concrete
    suggestions:
    - every RAW edge with [Tdep > Tdur] only needs a {e join} before its
      tail (the future has finished by then with high likelihood);
    - a violating RAW ([Tdep <= Tdur]) blocks asynchronous execution of
      the instances that exercise it — report it as a blocker with the
      variable involved;
    - violating WAR/WAW edges call for {e privatizing} the conflict
      variable in the construct (or hoisting a reset into the
      continuation, which is the paper's suggestion when the construct's
      own write is a reset). *)

type removable = {
  edge : Profile.edge_key;
  transform : Static.Legality.verdict;
      (** [Privatizable] or [Reduction], never [Serializing] *)
  var : string option;  (** the conflict variable, when nameable *)
}
(** One recorded edge a {e proven-legal} transform removes, and which
    transform ({!Static.Legality.classify} — live analysis, or the
    verdicts a version-4 profile stored). *)

type suggestion =
  | Spawnable of {
      statically_proven : bool;
      static_min_distance : int option;
      removable : removable list;
      race_verdict : Static.Race.Status.t option;
    }
      (** no violating RAW: annotate as a future. [statically_proven]
          distinguishes constructs whose independence the static layer
          proves on {e all} inputs
          ({!Static.Depend.construct_proven_independent}) from those
          where the profiled execution is the only evidence.
          [static_min_distance] is the tightest proven minimum distance
          ({!Static.Depend.distance_bound}, or the bounds stored in a
          version-3 profile) over the construct's recorded edges: every
          recorded dependence is at least that many loop iterations
          apart on {e every} input, so the overlap window the dynamic
          [Tdep] suggests is also a static guarantee.
          [removable] lists the exact proven-legal transform per
          removable recorded edge — unlike the pattern-matched
          [Reduce]/[Privatize] suggestions, these carry a static proof.
          [race_verdict] is the static race detector's status for the
          construct ({!Static.Race.status} — live analysis, or the
          statuses a version-5 profile stored; [None] when neither is
          available). A [Racy] status demotes the construct verdict
          from [`Parallelizable] to [`Needs_transforms]: the detector
          holds a concrete interference witness the profiled input
          never exercised, so spawning as-is cannot be advised *)
  | Join_before of { line : int; var : string option }
      (** respect a long-distance RAW by claiming the future here *)
  | Blocking_raw of { head_line : int; tail_line : int; var : string option }
  | Reduce of { var : string; line : int }
      (** every violating RAW on [var] is a read-modify-write accumulation
          with an associative operator ([v op= e] at [line]): rewrite as
          per-thread partials merged at the join. A heuristic — the
          programmer must confirm the intermediate values are unused, as
          with all of the paper's suggested transforms. *)
  | Privatize of { var : string; kinds : Shadow.Dependence.kind list }
  | Hoist_reset of { var : string; line : int }
      (** the construct's only conflicting write to [var] is a
          constant-reset at [line]: move it into the continuation *)

type t = {
  cid : int;
  construct : string;
  verdict : [ `Parallelizable | `Needs_transforms | `Not_amenable ];
  suggestions : suggestion list;
}

val advise : ?dep:Static.Depend.t -> Profile.t -> cid:int -> t
(** [`Parallelizable]: no violating RAW and no violating WAR/WAW.
    [`Needs_transforms]: no violating RAW, but privatization/hoisting
    needed. [`Not_amenable]: violating RAW edges remain. [dep] shares a
    static analysis for the [Spawnable] proof bit (same recomputation
    policy as {!Ranking.rank} when omitted). *)

val privatization_list : t -> string list
(** The variables to privatize, ready for
    {!Parsim.Speedup.analyze}'s [~privatize]. *)

val reduction_list : t -> string list
(** The accumulators to rewrite as reductions (for [~reduce]). *)

val pp : Format.formatter -> t -> unit
val pp_suggestion : Format.formatter -> suggestion -> unit
