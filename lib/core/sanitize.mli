(** Dynamic-profile sanitizer: cross-check a profile against the static
    dependence analysis.

    The profiler is a complex dynamic system (shadow memory, index tree,
    attribution walk, two engines, sharded merges, a file format); a bug
    that invents, drops or misattributes edges is otherwise invisible —
    the output is just numbers. The static layer gives an independent
    oracle to check against: a dynamic edge the analysis proves
    impossible, an own-frame edge attributed outside its activation, or
    a stored verdict that no longer matches the analysis each indicate a
    profiler (or file) bug, never a property of the program under test.

    [alchemist check] runs this over every registry workload in CI. *)

(** What kind of discrepancy an issue reports — the unit of the
    [check --json] violation counts. *)
type category =
  | Impossible_edge  (** recorded edge classified [Must_independent] *)
  | Distance_violation
      (** observed [min_tdep] below a proven (or stored) static distance
          bound *)
  | Frame_misattribution  (** own-frame edge attributed outside its activation *)
  | Verdict_mismatch  (** stored verdict coverage or agreement failure *)
  | Distbound_mismatch
      (** stored distance-bound coverage or agreement failure *)
  | Legality_mismatch
      (** stored legality-verdict coverage or agreement failure *)
  | Legality_violation
      (** a stored [Privatizable] verdict refuted by the observed edge
          pattern (a read-before-write iteration) *)
  | Race_mismatch
      (** stored race-status coverage or agreement failure — notably a
          [racy] construct rewritten [race-free], which would license
          parsim to drop its ordering edges *)

val category_to_string : category -> string
(** Kebab-case tag, e.g. ["impossible-edge"] — the [check --json] keys. *)

val all_categories : category list
(** Every category, in declaration order (for exhaustive JSON counts). *)

type issue = {
  cid : int;  (** construct the offending edge is recorded under; [-1]
                  for issues about the stored verdict list itself *)
  key : Profile.edge_key;
  category : category;
  reason : string;
}

val check : ?dep:Static.Depend.t -> Profile.t -> issue list
(** All discrepancies, deterministically ordered (by cid, then packed
    key, then category). Empty = the profile is consistent with the
    static analysis. [dep] shares an existing analysis of the same
    program; omitted, it is recomputed from [profile.prog]. Checks:

    - no recorded edge is classified {!Static.Depend.Must_independent};
    - an edge whose endpoints both provably address the current
      activation frame of a function [f] is only attributed to loop or
      conditional constructs of [f] itself (never to [f]'s procedure
      construct or anything outside the activation);
    - when the profile carries stored verdicts, they cover exactly the
      recorded edges and agree with the recomputed classification;
    - no recorded edge's observed [min_tdep] falls below a proven static
      minimum dependence distance ({!Static.Depend.distance_bound}) —
      [d] loop iterations apart implies at least [d] retired
      instructions apart;
    - when the profile carries stored distance bounds, they cover
      exactly the edges the analysis can bound, agree with the
      recomputed bound, and none contradicts its edge's observed
      [min_tdep];
    - when the profile carries stored legality verdicts, they cover
      exactly the edges the analysis classifies and agree with the
      recomputed verdicts ({!Static.Legality.classify});
    - a stored [Privatizable] verdict is cross-checked against the
      {e dynamic} record: a recorded RAW edge on the proof's cell whose
      tail lies inside the proof's loop span while its head lies outside
      is an observed read-before-write iteration — a hard failure
      independent of what the analysis recomputes;
    - when the profile carries stored race statuses, they cover exactly
      the recorded constructs the detector classifies and agree with the
      recomputed statuses ({!Static.Race.status}). Race issues carry a
      synthetic self-edge at the construct's head pc in [key]. *)

val pp_issue : Format.formatter -> issue -> unit
