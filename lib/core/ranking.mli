(** Ranked parallelization candidates (the paper's "Usability" output).

    Constructs are ordered by total executed instructions — "a construct
    is a good candidate if it has many instructions and few violating
    dependences" (§IV-B) — with each entry carrying its violation summary
    so callers can filter. *)

type entry = {
  cid : int;
  name : string;  (** e.g. ["Method flush_block"], ["Loop (zip,17)"] *)
  kind : Vm.Program.construct_kind;
  line : int;  (** source line of the construct head *)
  ttotal : int;
  instances : int;
  violations : Violation.summary;
  static_indep : bool;
      (** the static analysis proves every memory event in the
          construct's body (and everything it calls) unable to produce a
          loop-carried dependence — independence holds on {e all} inputs,
          not just the profiled one ({!Static.Depend.construct_proven_independent}) *)
  dist_bounded : bool;
      (** at least one recorded edge of the construct carries a proven
          minimum iteration distance ({!Static.Depend.distance_bound},
          or a bound stored in a version-3 profile) — the dependence is
          real but provably far apart, the paper's "distance at least
          [d]" evidence for pipelined or strip-mined parallelism *)
  legality_known : bool;
      (** the edge partition below is meaningful: a live analysis was
          available, or the profile stored version-4 legality verdicts
          (otherwise all three counts are 0) *)
  priv_edges : int;
      (** recorded edges proven removable by privatizing their cell
          ({!Static.Legality.Privatizable}) *)
  red_edges : int;
      (** recorded edges proven removable by a reduction rewrite
          ({!Static.Legality.Reduction}) *)
  blocking_edges : int;
      (** recorded edges no proven transform removes: serializing
          verdicts plus unclassified RAW dataflow — what actually
          stands between this construct and a parallel schedule *)
  race_status : Static.Race.Status.t option;
      (** the static race detector's status for the construct
          ({!Static.Race.status} — live analysis, or a version-5
          profile's stored statuses; [None] for conditionals or when no
          static facts are available). Rendered as the [\[race-free\]] /
          [\[racy\]] tag by {!pp_entry}. *)
}

val rank : ?dep:Static.Depend.t -> ?min_instructions:int -> Profile.t -> entry list
(** All executed constructs, descending by [ttotal].
    [min_instructions] (default 1) drops never-executed or trivial
    constructs. [dep] shares an existing analysis for the
    [static_indep] column; omitted, it is recomputed when the profile
    carries static verdicts, and the column is all-[false] when it does
    not (the run never established any static facts). *)

val remove_with_singletons : Profile.t -> entry list -> cid:int -> entry list
(** Fig. 6(b)'s operation: once construct [C] is chosen for
    parallelization, remove [C] and (transitively) every construct that
    only ever runs nested in removed constructs with at most one instance
    per instance of its parent — those are parallelized "for free" and
    must not be recommended again. *)

val pp_entry : Format.formatter -> entry -> unit
