(** Per-construct dependence-distance profiles.

    One {!construct_profile} per static construct, keyed by construct id.
    An entry records the paper's Fig. 2 quantities: total executed
    instructions ([ttotal], summed over outermost instances only —
    §III-B's recursion rule), the instance count, and for every static
    dependence edge crossing out of the construct the minimum observed
    distance [Tdep] (the minimum bounds exploitable concurrency).

    Edges are keyed by a single tagged int ({!Key.t}) packing
    [(head_pc, tail_pc, kind)], so the per-dependence bottom-up walk
    neither allocates a key record nor hashes a structured value; the
    unpacked {!edge_key} view is recovered on demand via {!Key.unpack}
    and the {!iter_edges}/{!fold_edges} traversals. *)

type edge_key = { head_pc : int; tail_pc : int; kind : Shadow.Dependence.kind }
(** Unpacked view of an edge key (reporting / analysis convenience). *)

module Key : sig
  type t = int
  (** [(head_pc lsl 31) lor (tail_pc lsl 2) lor kind] — pcs fit easily in
      29/31 bits for any program this VM can hold. *)

  val pack : head_pc:int -> tail_pc:int -> Shadow.Dependence.kind -> t
  val unpack : t -> edge_key
  val head_pc : t -> int
  val tail_pc : t -> int
  val kind : t -> Shadow.Dependence.kind
  val compare : t -> t -> int
end

module Etbl : sig
  type 'a t
  (** Open-addressing table keyed by {!Key.t} (linear probing,
      power-of-two capacity): int-keyed, avalanche-mixed hash, no
      polymorphic comparison — and, unlike [Hashtbl], no per-probe
      allocation and no bucket-list pointer chase on the hot path
      (one probe per attributed dependence). *)

  val mem : 'a t -> Key.t -> bool

  val add : 'a t -> Key.t -> 'a -> unit
  (** Insert, replacing any existing binding for the key. *)
end
(** Edge tables. Traverse via {!iter_edges}/{!fold_edges}. *)

type edge_stats = {
  mutable min_tdep : int;
  mutable count : int;  (** dynamic occurrences attributed to this edge *)
  mutable addrs : int list;
      (** up to three distinct conflicting addresses — enough to name the
          variable(s) behind the edge in reports and transformation
          advice. Most recent first when recorded live; sorted ascending
          after a {!merge}. *)
  mutable tail_internal : bool;
      (** some occurrence's tail executed while another instance of this
          construct was active (e.g. a later loop iteration) — as opposed
          to tails in the continuation after all instances, which a
          future-based transform handles with a join (Advice) *)
}

type construct_profile = {
  cid : int;
  mutable ttotal : int;
  mutable instances : int;
  edges : edge_stats Etbl.t;
  parents : (int, int ref) Hashtbl.t;
      (** direct dynamic parent cid -> instance count (drives Fig. 6(b)'s
          "single nested instance per instance" removal); the key [-1]
          stands for the execution root *)
  mutable nesting : int;  (** live recursion depth of this static construct *)
  mutable cache_key : Key.t;
      (** last edge key recorded on this construct ([min_int] = none) —
          a 1-entry memo that skips the table probe when a loop keeps
          hitting the same static edge *)
  mutable cache_stats : edge_stats;  (** stats cell memoized for [cache_key] *)
  mutable cache_parent_cid : int;
      (** last dynamic parent cid seen by {!leave} ([min_int] = none) —
          a 1-entry memo that skips the parents probe while iterating
          under an unchanged enclosing construct *)
  mutable cache_parent_count : int ref;  (** counter cell for the memo *)
}

type t = {
  prog : Vm.Program.t;
  by_cid : construct_profile array;
  mutable total_instructions : int;
  mutable static_verdicts : (Key.t * Static.Depend.verdict) list option;
      (** static classification of every recorded edge, sorted by packed
          key; one global list — a verdict depends only on the edge, not
          on which construct it was attributed to. [None] when no static
          analysis ran (e.g. a [trace_locals] profile, whose event set
          the verdicts do not model, or a version-1 file). *)
  mutable static_distbounds : (Key.t * int) list option;
      (** proven minimum dependence distance in loop iterations for
          recorded edges, sorted by packed key; only bounds [>= 1] are
          kept, so absence of a key means "nothing proven". Any dynamic
          instance of the edge must be at least this many retired
          instructions apart ([min_tdep >= d]) — the invariant
          [alchemist check] enforces. [None] when no static analysis ran
          (or a version [<= 2] file). *)
  mutable static_legality : (Key.t * Static.Legality.verdict) list option;
      (** transform-legality verdicts for recorded edges, sorted by
          packed key: every WAR/WAW edge classified
          [Privatizable]/[Reduction]/[Serializing], plus RAW edges
          proven reductions (unclassified RAW edges are absent — see
          {!Static.Legality.classify}). Persisted as the version-4
          profile section. [None] when no static analysis ran (or a
          version [<= 3] file). *)
  mutable static_race : (int * Static.Race.Status.t) list option;
      (** race-detector statuses by construct id, sorted ascending; only
          recorded (instances > 0) constructs the detector classifies
          appear — conditionals spawn no concurrent units, so they are
          absent. Persisted as the version-5 profile section. [None]
          when the detector did not run (or a version [<= 4] file). *)
}

val create : Vm.Program.t -> t

val enter : t -> cid:int -> unit
(** Instance start: bumps the recursion nesting counter. *)

val leave : t -> cid:int -> duration:int -> parent_cid:int -> unit
(** Instance completion (Table I lines 18–22): counts the instance,
    aggregates [duration] into [ttotal] only at outermost recursion
    depth, and records the dynamic parent. *)

val record_edge :
  t ->
  cid:int ->
  head_pc:int ->
  tail_pc:int ->
  kind:Shadow.Dependence.kind ->
  tdep:int ->
  addr:int ->
  unit
(** Table II lines 8–13: insert the static edge or lower its minimum. *)

val attach_verdicts : t -> (edge_key -> Static.Depend.verdict) -> unit
(** Classify every currently recorded edge and store the result in
    [static_verdicts] (sorted by packed key, deduplicated across
    constructs). *)

val attach_distbounds : t -> (edge_key -> int option) -> unit
(** Query a proven minimum iteration distance for every currently
    recorded edge and store the [>= 1] bounds in [static_distbounds]
    (sorted by packed key). *)

val attach_legality : t -> (edge_key -> Static.Legality.verdict option) -> unit
(** Classify every currently recorded edge for transform legality and
    store the classified subset in [static_legality] (sorted by packed
    key). *)

val attach_race : t -> (int -> Static.Race.Status.t option) -> unit
(** Query a race status for every recorded ([instances > 0]) construct
    and store the classified subset in [static_race] (sorted by cid). *)

val merge : t -> t -> t
(** Combine two profiles of the {e same} program (e.g. different inputs —
    the paper gathers multiple profile runs): instance counts and totals
    add, per-edge minima take the min, edge sets union, per-edge address
    samples take the three smallest of the union (which makes [merge]
    associative and commutative, see test_parallel). Verdict lists union
    by key ([None] is the identity); since both sides classify with the
    same program, same-key verdicts agree — ties nevertheless resolve
    deterministically so the laws hold unconditionally. Distance-bound
    lists union by key with same-key conflicts taking the minimum (still
    proven, still associative/commutative); legality lists union by key
    with conflicts keeping the weaker claim (max rank — degrades toward
    [Serializing]); race lists union by cid with conflicts keeping the
    higher {!Static.Race.Status.rank} (degrades toward [Racy]).
    @raise Invalid_argument if the programs differ. *)

val get : t -> int -> construct_profile

val mean_duration : construct_profile -> int
(** [ttotal / instances] — the per-instance [Tdur] used for the
    [Tdep > Tdur] test (0 when the construct never completed). *)

val iter_edges : construct_profile -> (edge_key -> edge_stats -> unit) -> unit
val fold_edges :
  construct_profile -> (edge_key -> edge_stats -> 'a -> 'a) -> 'a -> 'a

val num_edges : construct_profile -> int

val find_edge :
  construct_profile ->
  head_pc:int ->
  tail_pc:int ->
  Shadow.Dependence.kind ->
  edge_stats option

val edges_sorted : construct_profile -> (edge_key * edge_stats) list
(** Sorted by ascending minimum distance (ties broken by packed key, so
    the order is deterministic). *)

val cid_of_head_pc : t -> int -> int option
