(* FNV-1a, truncated to 62 bits: stable across processes (unlike
   Hashtbl.hash on nested variants, which is fine in-process but not
   something we want to pin a file format — or a content-addressed
   cache — to). *)
let fnv_init = 0x3bf29ce484222325 (* FNV offset basis, truncated *)
let fnv_mix h byte = (h lxor byte) * 0x100000001b3 land max_int

let hash_string s =
  let h = ref fnv_init in
  String.iter (fun c -> h := fnv_mix !h (Char.code c)) s;
  Printf.sprintf "%016x" !h

let fingerprint (prog : Vm.Program.t) =
  let h = ref fnv_init in
  let mix byte = h := fnv_mix !h byte in
  Array.iter
    (fun instr ->
      String.iter (fun c -> mix (Char.code c)) (Vm.Instr.to_string instr);
      mix 10)
    prog.code;
  Printf.sprintf "%016x" !h

let input_fingerprint (prog : Vm.Program.t) =
  (* The input identity of a run: the initialized global data (and the
     size of the global segment it lives in). Two programs of the same
     family share code — hence [fingerprint] — and differ exactly here,
     so (fingerprint, input_fingerprint) content-addresses a profiling
     run's program+input pair (the registry service's cache key).
     [global_inits] is emitted in declaration order by the compiler, so
     the hash is canonical without sorting. *)
  let h = ref fnv_init in
  let mix_int n =
    for shift = 0 to 7 do
      h := fnv_mix !h ((n lsr (shift * 8)) land 0xff)
    done
  in
  mix_int prog.globals_size;
  List.iter
    (fun (addr, v) ->
      mix_int addr;
      mix_int v)
    prog.global_inits;
  Printf.sprintf "%016x" !h

let kind_tag = function
  | Shadow.Dependence.Raw -> "RAW"
  | Shadow.Dependence.War -> "WAR"
  | Shadow.Dependence.Waw -> "WAW"

let kind_of_tag = function
  | "RAW" -> Ok Shadow.Dependence.Raw
  | "WAR" -> Ok Shadow.Dependence.War
  | "WAW" -> Ok Shadow.Dependence.Waw
  | s -> Error (Printf.sprintf "unknown dependence kind %S" s)

(* The output is canonical: constructs in cid order, edges sorted by
   packed key, parents sorted by cid, addresses sorted ascending. Equal
   profiles therefore serialize to identical bytes regardless of hash
   table insertion order — the property the sharded (-j N) driver's
   byte-identity test rests on.

   Version history: version 2 adds [verdict] lines (the static
   classification of each recorded edge) between the header block and
   the construct records. A profile without verdicts serializes to the
   exact version-1 bytes, so older files and trace_locals profiles are
   untouched; the reader accepts both versions and rejects verdict
   lines in a version-1 body. Version 3 adds [distbound] lines (proven
   minimum iteration distances, always >= 1) after the verdicts; a
   profile whose static layer proved no bounds serializes to the exact
   version-2 bytes, so the version only moves when there is something
   to say, and prune-on/off byte-identity is unaffected. Version 4 adds
   [legality] lines (transform-legality verdicts: priv/red/serial)
   after the distbounds, under the same rule — a profile with no
   legality verdicts serializes to byte-exact version-3 (or lower)
   output. Version 5 adds [race] lines (per-construct race-detector
   statuses: race-free/unknown/racy) after the legality verdicts; a
   profile with no race statuses — the detector off, or nothing
   recorded it could classify — serializes to byte-exact version-4 (or
   lower) output. *)
let write (t : Profile.t) buf =
  let distbounds =
    match t.Profile.static_distbounds with
    | Some (_ :: _ as l) -> Some l
    | _ -> None
  in
  let legality =
    match t.Profile.static_legality with
    | Some (_ :: _ as l) -> Some l
    | _ -> None
  in
  let race =
    match t.Profile.static_race with Some (_ :: _ as l) -> Some l | _ -> None
  in
  let version =
    match (race, legality, distbounds, t.Profile.static_verdicts) with
    | Some _, _, _, _ -> 5
    | None, Some _, _, _ -> 4
    | None, None, Some _, _ -> 3
    | None, None, None, Some _ -> 2
    | None, None, None, None -> 1
  in
  Buffer.add_string buf (Printf.sprintf "alchemist-profile %d\n" version);
  Buffer.add_string buf (Printf.sprintf "fingerprint %s\n" (fingerprint t.prog));
  Buffer.add_string buf (Printf.sprintf "total %d\n" t.total_instructions);
  (match t.Profile.static_verdicts with
  | None -> ()
  | Some verdicts ->
      List.iter
        (fun (key, v) ->
          let k = Profile.Key.unpack key in
          Buffer.add_string buf
            (Printf.sprintf "verdict %d %d %s %s\n" k.Profile.head_pc
               k.Profile.tail_pc (kind_tag k.Profile.kind)
               (Static.Depend.verdict_to_string v)))
        verdicts);
  (match distbounds with
  | None -> ()
  | Some bounds ->
      List.iter
        (fun (key, d) ->
          let k = Profile.Key.unpack key in
          Buffer.add_string buf
            (Printf.sprintf "distbound %d %d %s %d\n" k.Profile.head_pc
               k.Profile.tail_pc (kind_tag k.Profile.kind) d))
        bounds);
  (match legality with
  | None -> ()
  | Some verdicts ->
      List.iter
        (fun (key, v) ->
          let k = Profile.Key.unpack key in
          Buffer.add_string buf
            (Printf.sprintf "legality %d %d %s %s\n" k.Profile.head_pc
               k.Profile.tail_pc (kind_tag k.Profile.kind)
               (Static.Legality.verdict_to_string v)))
        verdicts);
  (match race with
  | None -> ()
  | Some statuses ->
      List.iter
        (fun (cid, s) ->
          Buffer.add_string buf
            (Printf.sprintf "race %d %s\n" cid
               (Static.Race.Status.to_string s)))
        statuses);
  Array.iter
    (fun (cp : Profile.construct_profile) ->
      if cp.instances > 0 then
        Buffer.add_string buf
          (Printf.sprintf "construct %d %d %d\n" cp.cid cp.ttotal cp.instances);
      Profile.fold_edges cp (fun k s acc -> (k, s) :: acc) []
      |> List.sort (fun ((a : Profile.edge_key), _) (b, _) -> compare a b)
      |> List.iter (fun ((k : Profile.edge_key), (s : Profile.edge_stats)) ->
             Buffer.add_string buf
               (Printf.sprintf "edge %d %d %d %s %d %d %d%s\n" cp.cid k.head_pc
                  k.tail_pc (kind_tag k.kind) s.min_tdep s.count
                  (if s.tail_internal then 1 else 0)
                  (String.concat ""
                     (List.map (Printf.sprintf " %d")
                        (List.sort compare s.addrs)))));
      Hashtbl.fold (fun parent n acc -> (parent, !n) :: acc) cp.parents []
      |> List.sort compare
      |> List.iter (fun (parent, n) ->
             Buffer.add_string buf
               (Printf.sprintf "parent %d %d %d\n" cp.cid parent n)))
    t.by_cid

let to_string t =
  let buf = Buffer.create 4096 in
  write t buf;
  Buffer.contents buf

let read (prog : Vm.Program.t) text =
  let ( let* ) = Result.bind in
  (* Number lines before dropping blanks so errors point at the actual
     line of the input, not its rank among the non-blank ones. *)
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, l))
    |> List.filter (fun (_, l) -> String.trim l <> "")
  in
  let err ln fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" ln m)) fmt in
  let int_of ln s =
    match int_of_string_opt s with
    | Some n -> Ok n
    | None -> err ln "not an integer: %S" s
  in
  match lines with
  | (hln, header) :: (fln, fp) :: (tln, total) :: rest ->
      let* version =
        match header with
        | "alchemist-profile 1" -> Ok 1
        | "alchemist-profile 2" -> Ok 2
        | "alchemist-profile 3" -> Ok 3
        | "alchemist-profile 4" -> Ok 4
        | "alchemist-profile 5" -> Ok 5
        | _ -> err hln "unsupported profile format/version"
      in
      let* () =
        match String.split_on_char ' ' fp with
        | [ "fingerprint"; h ] when h = fingerprint prog -> Ok ()
        | [ "fingerprint"; _ ] ->
            err fln "profile was recorded for a different program"
        | _ -> err fln "missing fingerprint line"
      in
      let* total_instructions =
        match String.split_on_char ' ' total with
        | [ "total"; n ] -> int_of tln n
        | _ -> err tln "missing total line"
      in
      let t = Profile.create prog in
      t.Profile.total_instructions <- total_instructions;
      let ncid = Array.length t.Profile.by_cid in
      let check_cid ln cid =
        if cid >= 0 && cid < ncid then Ok cid
        else err ln "construct id %d out of range" cid
      in
      (* Duplicate construct/edge/parent lines would silently overwrite
         (or, under merge semantics, double-count) earlier ones — a
         corrupt or hand-edited file, so reject it loudly. *)
      let seen_construct = Hashtbl.create 64 in
      (* Verdict lines are collected in reverse and sorted at the end:
         canonical files are already key-sorted, but a merged/hand-built
         one is still accepted as long as keys are unique. *)
      let verdicts = ref [] in
      let seen_verdict = Hashtbl.create 64 in
      (* Distbound and legality entries carry their source line so the
         recorded-edge check below can point at the offending line; the
         edge section comes after these blocks, so the check must wait
         until the whole file is parsed. *)
      let distbounds = ref [] in
      let seen_distbound = Hashtbl.create 16 in
      let legality = ref [] in
      let seen_legality = Hashtbl.create 16 in
      (* Race entries also carry their source line: they name construct
         ids, and the construct section that proves a cid was recorded
         comes after them, so validation waits for [finish]. *)
      let race = ref [] in
      let seen_race = Hashtbl.create 16 in
      let finish () =
        if version >= 2 then
          t.Profile.static_verdicts <-
            Some
              (List.sort
                 (fun (ka, _) (kb, _) -> Profile.Key.compare ka kb)
                 !verdicts);
        (* Distbound and legality lines assert facts about specific
           recorded edges; a line naming an edge the profile does not
           record is corruption (or a stale hand edit) that every
           downstream lookup would silently ignore — reject it here.
           Verdict lines are exempt: the sanitizer has a reachable
           diagnostic for stored verdicts on unrecorded edges. *)
        let recorded = Hashtbl.create 256 in
        Array.iter
          (fun cp ->
            Profile.fold_edges cp
              (fun (k : Profile.edge_key) _ () ->
                Hashtbl.replace recorded
                  (Profile.Key.pack ~head_pc:k.Profile.head_pc
                     ~tail_pc:k.Profile.tail_pc k.Profile.kind)
                  ())
              ())
          t.Profile.by_cid;
        let check_recorded what entries =
          List.fold_left
            (fun acc (ln, key, _) ->
              let* () = acc in
              if Hashtbl.mem recorded key then Ok ()
              else
                let k = Profile.Key.unpack key in
                err ln "%s references unrecorded edge %d %d %s" what
                  k.Profile.head_pc k.Profile.tail_pc (kind_tag k.Profile.kind))
            (Ok ()) entries
        in
        let* () = check_recorded "distbound" !distbounds in
        let* () = check_recorded "legality" !legality in
        (* Race lines likewise assert facts about recorded constructs:
           a status for a construct with no profile entry has nothing
           to validate against and would vanish on rewrite. *)
        let* () =
          List.fold_left
            (fun acc (ln, cid, _) ->
              let* () = acc in
              if Hashtbl.mem seen_construct cid then Ok ()
              else err ln "race references unrecorded construct %d" cid)
            (Ok ()) !race
        in
        let strip entries =
          List.sort
            (fun (ka, _) (kb, _) -> Profile.Key.compare ka kb)
            (List.map (fun (_, k, v) -> (k, v)) entries)
        in
        (* A version-3 file with no distbound lines normalizes to "ran,
           proved nothing" and will round-trip as version 2; likewise a
           version-4 file with no legality lines round-trips at the
           highest version its content requires. *)
        if version >= 3 then
          t.Profile.static_distbounds <- Some (strip !distbounds);
        if version >= 4 then t.Profile.static_legality <- Some (strip !legality);
        if version >= 5 then
          t.Profile.static_race <-
            Some
              (List.sort
                 (fun (ca, _) (cb, _) -> compare ca cb)
                 (List.map (fun (_, cid, s) -> (cid, s)) !race));
        Ok t
      in
      let rec go = function
        | [] -> finish ()
        | (ln, line) :: rest -> (
            match String.split_on_char ' ' line with
            | "verdict" :: head :: tail :: kind :: tag :: [] ->
                if version < 2 then
                  err ln "verdict line in a version-1 profile"
                else
                  let* head_pc = int_of ln head in
                  let* tail_pc = int_of ln tail in
                  let* kind =
                    Result.map_error
                      (Printf.sprintf "line %d: %s" ln)
                      (kind_of_tag kind)
                  in
                  let* () =
                    if head_pc >= 0 && tail_pc >= 0 then Ok ()
                    else err ln "negative pc in verdict line"
                  in
                  let* v =
                    match Static.Depend.verdict_of_string tag with
                    | Some v -> Ok v
                    | None -> err ln "unknown static verdict %S" tag
                  in
                  let key = Profile.Key.pack ~head_pc ~tail_pc kind in
                  if Hashtbl.mem seen_verdict key then
                    err ln "duplicate verdict %d %d %s" head_pc tail_pc
                      (kind_tag kind)
                  else begin
                    Hashtbl.add seen_verdict key ();
                    verdicts := (key, v) :: !verdicts;
                    go rest
                  end
            | "distbound" :: head :: tail :: kind :: d :: [] ->
                if version < 3 then
                  err ln "distbound line in a version-%d profile" version
                else
                  let* head_pc = int_of ln head in
                  let* tail_pc = int_of ln tail in
                  let* kind =
                    Result.map_error
                      (Printf.sprintf "line %d: %s" ln)
                      (kind_of_tag kind)
                  in
                  let* () =
                    if head_pc >= 0 && tail_pc >= 0 then Ok ()
                    else err ln "negative pc in distbound line"
                  in
                  let* d = int_of ln d in
                  let* () =
                    if d >= 1 then Ok ()
                    else err ln "distance bound must be >= 1, got %d" d
                  in
                  let key = Profile.Key.pack ~head_pc ~tail_pc kind in
                  if Hashtbl.mem seen_distbound key then
                    err ln "duplicate distbound %d %d %s" head_pc tail_pc
                      (kind_tag kind)
                  else begin
                    Hashtbl.add seen_distbound key ();
                    distbounds := (ln, key, d) :: !distbounds;
                    go rest
                  end
            | "legality" :: head :: tail :: kind :: tag :: [] ->
                if version < 4 then
                  err ln "legality line in a version-%d profile" version
                else
                  let* head_pc = int_of ln head in
                  let* tail_pc = int_of ln tail in
                  let* kind =
                    Result.map_error
                      (Printf.sprintf "line %d: %s" ln)
                      (kind_of_tag kind)
                  in
                  let* () =
                    if head_pc >= 0 && tail_pc >= 0 then Ok ()
                    else err ln "negative pc in legality line"
                  in
                  let* v =
                    match Static.Legality.verdict_of_string tag with
                    | Some v -> Ok v
                    | None -> err ln "unknown legality verdict %S" tag
                  in
                  let key = Profile.Key.pack ~head_pc ~tail_pc kind in
                  if Hashtbl.mem seen_legality key then
                    err ln "duplicate legality %d %d %s" head_pc tail_pc
                      (kind_tag kind)
                  else begin
                    Hashtbl.add seen_legality key ();
                    legality := (ln, key, v) :: !legality;
                    go rest
                  end
            | "race" :: cid :: tag :: [] ->
                if version < 5 then
                  err ln "race line in a version-%d profile" version
                else
                  let* cid = Result.bind (int_of ln cid) (check_cid ln) in
                  let* s =
                    match Static.Race.Status.of_string tag with
                    | Some s -> Ok s
                    | None -> err ln "unknown race status %S" tag
                  in
                  if Hashtbl.mem seen_race cid then
                    err ln "duplicate race %d" cid
                  else begin
                    Hashtbl.add seen_race cid ();
                    race := (ln, cid, s) :: !race;
                    go rest
                  end
            | "construct" :: cid :: ttotal :: instances :: [] ->
                let* cid = Result.bind (int_of ln cid) (check_cid ln) in
                let* ttotal = int_of ln ttotal in
                let* instances = int_of ln instances in
                if Hashtbl.mem seen_construct cid then
                  err ln "duplicate construct %d" cid
                else begin
                  Hashtbl.add seen_construct cid ();
                  let cp = Profile.get t cid in
                  cp.Profile.ttotal <- ttotal;
                  cp.Profile.instances <- instances;
                  go rest
                end
            | "edge" :: cid :: head :: tail :: kind :: min_tdep :: count
              :: internal :: addrs ->
                let* cid = Result.bind (int_of ln cid) (check_cid ln) in
                let* head_pc = int_of ln head in
                let* tail_pc = int_of ln tail in
                let* kind =
                  Result.map_error (Printf.sprintf "line %d: %s" ln)
                    (kind_of_tag kind)
                in
                let* min_tdep = int_of ln min_tdep in
                let* count = int_of ln count in
                let* internal = int_of ln internal in
                let* addrs =
                  List.fold_left
                    (fun acc a ->
                      let* acc = acc in
                      let* a = int_of ln a in
                      Ok (a :: acc))
                    (Ok []) addrs
                in
                let cp = Profile.get t cid in
                let key = Profile.Key.pack ~head_pc ~tail_pc kind in
                if Profile.Etbl.mem cp.Profile.edges key then
                  err ln "duplicate edge %d %d %d %s" cid head_pc tail_pc
                    (kind_tag kind)
                else begin
                  Profile.Etbl.add cp.Profile.edges key
                    {
                      Profile.min_tdep;
                      count;
                      addrs;
                      tail_internal = internal <> 0;
                    };
                  go rest
                end
            | "parent" :: cid :: parent :: count :: [] ->
                let* cid = Result.bind (int_of ln cid) (check_cid ln) in
                let* parent = int_of ln parent in
                let* count = int_of ln count in
                let parents = (Profile.get t cid).Profile.parents in
                if Hashtbl.mem parents parent then
                  err ln "duplicate parent %d %d" cid parent
                else begin
                  Hashtbl.add parents parent (ref count);
                  go rest
                end
            | _ -> err ln "malformed line: %S" line)
      in
      go rest
  | _ -> Error "truncated profile"

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load prog path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> read prog (really_input_string ic (in_channel_length ic)))
