type removable = {
  edge : Profile.edge_key;
  transform : Static.Legality.verdict;
      (* Privatizable or Reduction, never Serializing *)
  var : string option;
}

type suggestion =
  | Spawnable of {
      statically_proven : bool;
      static_min_distance : int option;
      removable : removable list;
      race_verdict : Static.Race.Status.t option;
    }
  | Join_before of { line : int; var : string option }
  | Blocking_raw of { head_line : int; tail_line : int; var : string option }
  | Reduce of { var : string; line : int }
  | Privatize of { var : string; kinds : Shadow.Dependence.kind list }
  | Hoist_reset of { var : string; line : int }

type t = {
  cid : int;
  construct : string;
  verdict : [ `Parallelizable | `Needs_transforms | `Not_amenable ];
  suggestions : suggestion list;
}

(* The bare global name at an address (no element index). *)
let var_of_addr (prog : Vm.Program.t) addr =
  List.find_map
    (fun (name, base, len) ->
      if addr >= base && addr < base + len then Some name else None)
    prog.global_layout

let first_var prog (s : Profile.edge_stats) =
  List.find_map (var_of_addr prog) (List.rev s.addrs)

(* Is the instruction at [pc] a constant reset of a global ([Const k;
   StoreGlobal a] — e.g. gzip's [last_flags = 0])? *)
let is_const_reset (prog : Vm.Program.t) pc =
  pc > 0
  &&
  match (prog.code.(pc - 1), prog.code.(pc)) with
  | Vm.Instr.Const _, Vm.Instr.StoreGlobal _ -> true
  | _ -> false

(* Reduction recognition: [v op= e] compiles to
   [LoadGlobal a; <e>; Binop op; StoreGlobal a] with an associative,
   commutative [op]. The window bounds how far back the load may be. *)
let associative = function
  | Minic.Ast.Add | Minic.Ast.Mul | Minic.Ast.BitAnd | Minic.Ast.BitOr
  | Minic.Ast.BitXor ->
      true
  | _ -> false

(* [pc] is the StoreGlobal of a reduction update of address [a]? *)
let is_reduction_store (prog : Vm.Program.t) pc =
  match prog.code.(pc) with
  | Vm.Instr.StoreGlobal a when pc >= 2 -> (
      match prog.code.(pc - 1) with
      | Vm.Instr.Binop op when associative op ->
          let lo = max 0 (pc - 12) in
          let found = ref false in
          for j = lo to pc - 2 do
            if prog.code.(j) = Vm.Instr.LoadGlobal a then found := true
          done;
          !found
      | _ -> false)
  | _ -> false

(* [pc] is the LoadGlobal feeding a reduction update of the same
   address (the read side of [v op= e])? *)
let is_reduction_load (prog : Vm.Program.t) pc =
  match prog.code.(pc) with
  | Vm.Instr.LoadGlobal a ->
      let hi = min (Array.length prog.code - 1) (pc + 12) in
      let found = ref false in
      for j = pc + 1 to hi do
        if (not !found) && prog.code.(j) = Vm.Instr.StoreGlobal a then
          if is_reduction_store prog j then found := true
      done;
      !found
  | _ -> false

let advise ?dep (p : Profile.t) ~cid =
  let prog = p.prog in
  (* Same recomputation policy as {!Ranking.rank}: a verdict-carrying
     profile licenses rebuilding the analysis; a verdict-less one gets
     dynamic-only advice. *)
  let dep =
    match dep with
    | Some _ -> dep
    | None ->
        if p.Profile.static_verdicts <> None then
          Some (Static.Depend.analyze prog)
        else None
  in
  let cp = Profile.get p cid in
  let construct =
    Format.asprintf "%a" Vm.Program.pp_construct prog.constructs.(cid)
  in
  let edges = Profile.edges_sorted cp in
  let violating, long =
    List.partition (fun (_, s) -> Violation.is_violating cp s) edges
  in
  let v_raw, v_waw_war =
    List.partition
      (fun ((k : Profile.edge_key), _) -> k.kind = Shadow.Dependence.Raw)
      violating
  in
  (* A violating RAW on variable v is transformable as a reduction when
     every such edge on v is the self-chain of an associative
     read-modify-write update. *)
  (* A violating RAW whose tails all lie in the continuation after the
     construct's instances is a claim point, not a blocker: the
     continuation joins the future there (the paper's flush_block
     checksum edges only prevent the final call from overlapping, not
     the calls inside the loop). Tails observed while another instance
     was active (cross-iteration, cross-call) do block. *)
  let claims, v_raw =
    List.partition
      (fun (_, (s : Profile.edge_stats)) -> not s.tail_internal)
      v_raw
  in
  let claim_joins =
    List.map
      (fun ((k : Profile.edge_key), s) ->
        Join_before
          { line = Vm.Program.line_of_pc prog k.tail_pc; var = first_var prog s })
      claims
    |> List.sort_uniq compare
  in
  let raw_by_var = Hashtbl.create 8 in
  let unnamed_raw = ref [] in
  List.iter
    (fun ((k : Profile.edge_key), s) ->
      match first_var prog s with
      | Some var ->
          Hashtbl.replace raw_by_var var
            ((k, s) :: Option.value ~default:[] (Hashtbl.find_opt raw_by_var var))
      | None -> unnamed_raw := (k, s) :: !unnamed_raw)
    v_raw;
  let reductions = ref [] and blockers = ref [] in
  let block_edge ((k : Profile.edge_key), s) =
    blockers :=
      Blocking_raw
        {
          head_line = Vm.Program.line_of_pc prog k.head_pc;
          tail_line = Vm.Program.line_of_pc prog k.tail_pc;
          var = first_var prog s;
        }
      :: !blockers
  in
  Hashtbl.iter
    (fun var edges ->
      let reducible =
        List.for_all
          (fun ((k : Profile.edge_key), _) ->
            is_reduction_store prog k.head_pc && is_reduction_load prog k.tail_pc)
          edges
      in
      if reducible then
        let (k : Profile.edge_key), _ = List.hd edges in
        reductions :=
          Reduce { var; line = Vm.Program.line_of_pc prog k.head_pc }
          :: !reductions
      else List.iter block_edge edges)
    raw_by_var;
  List.iter block_edge !unnamed_raw;
  let blockers = List.rev !blockers in
  let reductions = List.sort compare !reductions in
  (* Join points: tails of the long-distance RAW edges (dedup by line). *)
  let joins =
    List.filter_map
      (fun ((k : Profile.edge_key), s) ->
        if k.kind = Shadow.Dependence.Raw then
          Some
            (Join_before
               {
                 line = Vm.Program.line_of_pc prog k.tail_pc;
                 var = first_var prog s;
               })
        else None)
      long
    |> List.sort_uniq compare
  in
  (* Privatization / hoisting: group violating WAR/WAW by variable. *)
  let by_var = Hashtbl.create 8 in
  List.iter
    (fun ((k : Profile.edge_key), s) ->
      match first_var prog s with
      | None -> ()
      | Some var ->
          let kinds, reset =
            Option.value ~default:([], None) (Hashtbl.find_opt by_var var)
          in
          let kinds =
            if List.mem k.kind kinds then kinds else k.kind :: kinds
          in
          let reset =
            match reset with
            | Some _ -> reset
            | None ->
                if
                  k.kind = Shadow.Dependence.Waw
                  && is_const_reset prog k.head_pc
                then Some (Vm.Program.line_of_pc prog k.head_pc)
                else None
          in
          Hashtbl.replace by_var var (kinds, reset))
    v_waw_war;
  let transforms =
    Hashtbl.fold
      (fun var (kinds, reset) acc ->
        (match reset with
        | Some line -> Hoist_reset { var; line }
        | None -> Privatize { var; kinds })
        :: acc)
      by_var []
    |> List.sort compare
  in
  (* The static race detector's status for this construct — live
     analysis first, else the statuses a version-5 profile stored. *)
  let race_verdict =
    match dep with
    | Some d -> Static.Race.status (Static.Depend.race d) ~cid
    | None -> Option.bind p.Profile.static_race (List.assoc_opt cid)
  in
  let verdict =
    if blockers <> [] then `Not_amenable
    else if transforms <> [] || reductions <> [] then `Needs_transforms
    else if race_verdict = Some Static.Race.Status.Racy then
      (* Dynamic evidence alone said "spawn as-is", but the detector has
         a concrete interference witness the profiled input just never
         exercised — demote: the races must be resolved first. *)
      `Needs_transforms
    else `Parallelizable
  in
  (* Tightest proven iteration distance among the construct's recorded
     edges — "the overlap window is at least this wide". From the live
     analysis when available, else from the bounds stored in a v3 file. *)
  let distance_bound_of (k : Profile.edge_key) =
    match dep with
    | Some d ->
        Static.Depend.distance_bound d ~head_pc:k.head_pc ~tail_pc:k.tail_pc
    | None ->
        Option.bind p.Profile.static_distbounds (fun l ->
            List.assoc_opt
              (Profile.Key.pack ~head_pc:k.head_pc ~tail_pc:k.tail_pc k.kind)
              l)
  in
  let static_min_distance =
    List.fold_left
      (fun acc (k, _) ->
        match (distance_bound_of k, acc) with
        | Some d, Some m -> Some (min d m)
        | Some d, None -> Some d
        | None, acc -> acc)
      None edges
  in
  (* The exact transform the legality engine proves removes each
     removable recorded edge — live analysis first, else a version-4
     profile's stored verdicts. This is the actionable half of the
     advice: the listed transforms are {e proven} legal, not
     pattern-guessed like the dynamic [Reduce]/[Privatize] suggestions
     above. *)
  let legality_of (k : Profile.edge_key) =
    match dep with
    | Some d ->
        Static.Legality.classify (Static.Depend.legality d) ~kind:k.kind
          ~head_pc:k.head_pc ~tail_pc:k.tail_pc
    | None ->
        Option.bind p.Profile.static_legality
          (List.assoc_opt
             (Profile.Key.pack ~head_pc:k.head_pc ~tail_pc:k.tail_pc k.kind))
  in
  let removable =
    List.filter_map
      (fun ((k : Profile.edge_key), s) ->
        match legality_of k with
        | Some
            ((Static.Legality.Privatizable | Static.Legality.Reduction) as v)
          ->
            Some { edge = k; transform = v; var = first_var prog s }
        | _ -> None)
      edges
    |> List.sort compare
  in
  let suggestions =
    if blockers = [] then
      let statically_proven =
        match dep with
        | Some d -> Static.Depend.construct_proven_independent d ~cid
        | None -> false
      in
      Spawnable { statically_proven; static_min_distance; removable;
                  race_verdict }
      :: reductions
      @ transforms @ claim_joins @ joins
    else blockers @ reductions @ transforms @ claim_joins
  in
  { cid; construct; verdict; suggestions }

let privatization_list t =
  List.filter_map
    (function
      | Privatize { var; _ } | Hoist_reset { var; _ } -> Some var | _ -> None)
    t.suggestions
  |> List.sort_uniq compare

let reduction_list t =
  List.filter_map
    (function Reduce { var; _ } -> Some var | _ -> None)
    t.suggestions
  |> List.sort_uniq compare

let pp_suggestion ppf = function
  | Spawnable { statically_proven; static_min_distance; removable;
                race_verdict } ->
      if statically_proven then
        Format.fprintf ppf
          "annotate as a future: statically proven independent (holds on all \
           inputs)"
      else
        Format.fprintf ppf
          "annotate as a future: no read reaches it before it finishes \
           (dynamic evidence only)";
      Option.iter
        (fun d ->
          Format.fprintf ppf
            "; recorded dependences proven >= %d iteration%s apart" d
            (if d = 1 then "" else "s"))
        static_min_distance;
      List.iter
        (fun { edge; transform; var } ->
          Format.fprintf ppf "; %s edge %d->%d%s removable by %s"
            (Shadow.Dependence.kind_to_string edge.Profile.kind)
            edge.Profile.head_pc edge.Profile.tail_pc
            (match var with Some v -> " on " ^ v | None -> "")
            (match transform with
            | Static.Legality.Privatizable -> "privatization"
            | Static.Legality.Reduction -> "reduction rewrite"
            | Static.Legality.Serializing -> "no transform"))
        removable;
      Option.iter
        (fun s ->
          Format.fprintf ppf "; static race check: %s"
            (Static.Race.Status.to_string s))
        race_verdict
  | Join_before { line; var } ->
      Format.fprintf ppf "join the future before line %d%a" line
        (fun ppf -> function
          | Some v -> Format.fprintf ppf " (first conflicting read of %s)" v
          | None -> ())
        var
  | Blocking_raw { head_line; tail_line; var } ->
      Format.fprintf ppf
        "blocking RAW: line %d -> line %d%a (distance below the construct's \
         duration)"
        head_line tail_line
        (fun ppf -> function
          | Some v -> Format.fprintf ppf " on %s" v
          | None -> ())
        var
  | Reduce { var; line } ->
      Format.fprintf ppf
        "rewrite %s (updated at line %d) as a reduction: per-thread partials \
         merged at the join"
        var line
  | Privatize { var; kinds } ->
      Format.fprintf ppf "privatize %s (%s conflicts with the continuation)"
        var
        (String.concat "/" (List.map Shadow.Dependence.kind_to_string kinds))
  | Hoist_reset { var; line } ->
      Format.fprintf ppf
        "hoist the reset of %s (line %d) into the continuation and keep a \
         private copy"
        var line

let pp ppf t =
  let verdict =
    match t.verdict with
    | `Parallelizable -> "parallelizable as-is"
    | `Needs_transforms -> "parallelizable after transforms"
    | `Not_amenable -> "not amenable (violating RAW)"
  in
  Format.fprintf ppf "@[<v>%s: %s@,%a@]" t.construct verdict
    (Format.pp_print_list (fun ppf s ->
         Format.fprintf ppf "  - %a" pp_suggestion s))
    t.suggestions
