(** The Alchemist profiler: one instrumented execution produces the
    dependence-distance profile of {e every} construct (the paper's
    "transparency" property — no construct pre-selection).

    Wiring per event:
    - [on_instr] drives the clock and rule (5) pops;
    - [on_branch]/[on_call]/[on_ret] drive rules (1)–(4) on the index tree;
    - [on_read]/[on_write] feed shadow memory, whose dependence edges are
      attributed bottom-up along the index tree (Table II): starting from
      the head's enclosing construct instance, every {e completed}
      ancestor instance whose lifetime covers the head's timestamp
      receives the edge; the walk stops at the first active ancestor
      (for which the dependence is internal) or at a recycled node
      (detected by the time-window check). *)

type stats = {
  instructions : int;
  static_constructs : int;
  dynamic_constructs : int;  (** completed construct instances *)
  deps_detected : int;  (** dynamic dependence events *)
  shadow_events : int;  (** memory accesses tracked *)
  pool_allocated : int;  (** index-tree nodes ever allocated *)
  pool_reused : int;
  forced_pops : int;  (** should be 0; see {!Indexing.Rules.forced_pops} *)
  pruned_pcs : int;
      (** memory-event pcs the static oracle proved hook-free (0 when the
          static layer did not run, i.e. under [trace_locals]) *)
  event_pcs : int;  (** memory-event pcs in live code (pruning denominator) *)
}

type result = {
  profile : Profile.t;
  stats : stats;
  run : Vm.Machine.result;  (** the program's ordinary execution result *)
  obs : Obs.Registry.t;
      (** live telemetry covering every layer: [vm.*] instruction and
          memory-event counters, [shadow.*] cell/arena/clear-stack
          metrics, [pool.*]/[tree.*] indexing metrics, and
          [profiler.walk_depth]/[profiler.wall] — snapshot with
          {!telemetry} or {!Obs.Registry.snapshot} *)
}

val telemetry : result -> Obs.snapshot
(** [Obs.Registry.snapshot r.obs]. *)

type facts
(** Precomputed static facts (CFA + dependence analysis + IR-widened
    prune mask), immutable and shareable across runs and domains. The
    facts of a program depend only on its code, never on its
    initialized global data, so one [facts] value serves every input of
    a program family — the registry service's incremental re-profiling
    reuses it when only the input changed. *)

val prepare_facts : Vm.Program.t -> facts
(** Runs the whole static pipeline once, up front. *)

val facts_fingerprint : facts -> string
(** The {!Profile_io.fingerprint} of the program the facts were prepared
    for — the content-address the service's fact cache is keyed by. *)

val run :
  ?engine:Vm.Machine.engine ->
  ?regalloc:bool ->
  ?ring:bool ->
  ?fuel:int ->
  ?scan_limit:int ->
  ?pool_capacity:int ->
  ?obs:Obs.Registry.t ->
  ?facts:facts ->
  ?trace_locals:bool ->
  ?static_prune:bool ->
  ?legality:bool ->
  ?race:bool ->
  Vm.Program.t ->
  result
(** Profiles one execution.

    [engine] selects the VM execution engine (default
    {!Vm.Machine.Threaded}); all engines feed the profiler the exact
    same event stream, so the profile is engine-independent
    (differentially tested). The engine used is recorded in telemetry as
    the [vm.engine] gauge (0 = switch, 1 = threaded, 2 = register).
    [regalloc] (default [true]) only affects the register engine: when
    [false] the register IR runs on the identity vreg mapping instead of
    the colored window — the ablation the bench measures; observable
    results are unchanged either way.
    [ring] (default [true]) likewise only affects the register engine:
    when on, hook events are appended to a flat event ring drained in
    bulk ({!Ir.Ring}), with segment clock advances batched through
    {!Indexing.Rules.on_instr_range}; when [false] every event is
    delivered directly at its instruction. The profile and all
    non-[ir.*] telemetry are byte-identical either way (differentially
    tested) — only the hook-delivery cost changes.
    [facts] supplies precomputed static facts ({!prepare_facts}) so the
    run skips the CFA and dependence analyses — the profile is
    byte-identical with or without it; passing facts prepared for a
    program with different code raises [Invalid_argument].
    [pool_capacity] (default 1M, the paper's setting) controls index-node
    retention; [trace_locals] (default [false]) additionally tracks scalar
    frame slots as memory — see {!Vm.Machine.run_hooked}. [obs] supplies
    the registry telemetry is registered into (so a caller can add its own
    metrics, e.g. the sharded driver's per-shard timers); by default each
    run gets a private registry — runs never share instruments, which is
    what keeps sharded domains contention-free.

    Unless [trace_locals] is set, every run additionally computes the
    static dependence analysis ({!Static.Depend}) and stores a verdict
    per recorded edge in [profile.static_verdicts] (serialized as
    version-2 profile files). [static_prune] (default [true])
    additionally applies the analysis' prune mask, skipping the shadow
    hooks of event pcs proven unable to affect the profile — the
    resulting profile is byte-identical either way (enforced by
    [alchemist check] and test_static); only the hook-call cost and the
    [shadow.*] telemetry volume change.
    [legality] (default [true]) controls whether the transform-legality
    classification ({!Static.Legality}) is stored per recorded edge in
    [profile.static_legality]; with [false] the profile carries no
    legality block and serializes as a version-3 file whose bytes are
    exactly the version-4 output minus its [legality] lines (the CI
    gate enforces this).
    [race] (default [true]) controls whether the static race detector
    ({!Static.Race}) stores a status per recorded construct in
    [profile.static_race]; with [false] the profile carries no race
    block and serializes as a version-4-or-lower file whose bytes are
    exactly the version-5 output minus its [race] lines (the CI gate
    enforces this too).
    @raise Vm.Machine.Trap as {!Vm.Machine.run}. *)

val run_trace :
  ?scan_limit:int ->
  ?pool_capacity:int ->
  ?obs:Obs.Registry.t ->
  Vm.Trace.t ->
  Vm.Program.t ->
  result
(** Profile offline from a recorded trace (see {!Vm.Trace}); produces a
    result identical to the online {!run} of the same execution
    (differentially tested). *)

val run_source :
  ?engine:Vm.Machine.engine ->
  ?ring:bool ->
  ?fuel:int ->
  ?scan_limit:int ->
  ?pool_capacity:int ->
  ?obs:Obs.Registry.t ->
  ?trace_locals:bool ->
  ?static_prune:bool ->
  ?legality:bool ->
  ?race:bool ->
  string ->
  result
(** Convenience: compile a Mini-C source and profile it. *)
