let line_of_pc (t : Profile.t) pc = Vm.Program.line_of_pc t.prog pc

let name_of_addr (prog : Vm.Program.t) addr =
  List.find_map
    (fun (name, base, len) ->
      if addr < base || addr >= base + len then None
      else if len = 1 then Some name
      else Some (Printf.sprintf "%s[%d]" name (addr - base)))
    prog.global_layout

let conflict_names (t : Profile.t) (s : Profile.edge_stats) =
  let names =
    List.filter_map (name_of_addr t.prog) (List.rev s.addrs)
    |> List.sort_uniq compare
  in
  match names with [] -> "" | l -> "  on " ^ String.concat ", " l

(* The static-verdict column. A profile produced with the static layer
   on (any default-mode run) stores one verdict per edge; render it so a
   reader can tell [must-dep] edges (real, provable) from [may-dep] ones
   (where only the dynamic distance is evidence). [Must_independent]
   never appears on a recorded edge — the sanitizer fails first. *)
let verdict_of_key (t : Profile.t) =
  match t.Profile.static_verdicts with
  | None -> fun _ -> None
  | Some l ->
      let tbl = Hashtbl.create (List.length l) in
      List.iter (fun (key, v) -> Hashtbl.replace tbl key v) l;
      fun (k : Profile.edge_key) ->
        Hashtbl.find_opt tbl
          (Profile.Key.pack ~head_pc:k.head_pc ~tail_pc:k.tail_pc k.kind)

(* The proven-distance column (version-3 profiles): a [dist>=d] tag
   next to an edge says its endpoints are at least [d] loop iterations
   apart on every input — so the observed [Tdep] is not an accident of
   this run's data. *)
let distbound_of_key (t : Profile.t) =
  match t.Profile.static_distbounds with
  | None -> fun _ -> None
  | Some l ->
      let tbl = Hashtbl.create (max 1 (List.length l)) in
      List.iter (fun (key, d) -> Hashtbl.replace tbl key d) l;
      fun (k : Profile.edge_key) ->
        Hashtbl.find_opt tbl
          (Profile.Key.pack ~head_pc:k.head_pc ~tail_pc:k.tail_pc k.kind)

(* The transform-legality column (version-4 profiles): [priv] marks an
   edge a privatization removes, [red] one a reduction rewrite removes,
   [serial] one that genuinely orders iterations — the reader's answer
   to "so what do I do about this edge?". *)
let legality_of_key (t : Profile.t) =
  match t.Profile.static_legality with
  | None -> fun _ -> None
  | Some l ->
      let tbl = Hashtbl.create (max 1 (List.length l)) in
      List.iter (fun (key, v) -> Hashtbl.replace tbl key v) l;
      fun (k : Profile.edge_key) ->
        Hashtbl.find_opt tbl
          (Profile.Key.pack ~head_pc:k.head_pc ~tail_pc:k.tail_pc k.kind)

(* The race-status tag for a construct header (version-5 profiles):
   [race-free] says the detector proved every may-happen-in-parallel
   access pair of a spawned execution non-conflicting, [racy] that it
   holds a concrete witness pair, [race-unknown] that an unbounded
   access kept it from deciding. *)
let race_tag_of_status = function
  | Some Static.Race.Status.Race_free -> "  [race-free]"
  | Some Static.Race.Status.Racy -> "  [racy]"
  | Some Static.Race.Status.Unknown -> "  [race-unknown]"
  | None -> ""

let race_tag (t : Profile.t) cid =
  race_tag_of_status
    (Option.bind t.Profile.static_race (List.assoc_opt cid))

let render_edges buf (t : Profile.t) p ~max_edges ~kinds =
  let verdict_of = verdict_of_key t in
  let distbound_of = distbound_of_key t in
  let legality_of = legality_of_key t in
  let edges =
    Profile.edges_sorted p
    |> List.filter (fun ((k : Profile.edge_key), _) -> List.mem k.kind kinds)
  in
  let shown = List.filteri (fun i _ -> i < max_edges) edges in
  List.iter
    (fun ((k : Profile.edge_key), (s : Profile.edge_stats)) ->
      Buffer.add_string buf
        (Printf.sprintf "     %s: line %d -> line %d  Tdep=%d%s%s%s%s%s\n"
           (Shadow.Dependence.kind_to_string k.kind)
           (line_of_pc t k.head_pc) (line_of_pc t k.tail_pc) s.min_tdep
           (if Violation.is_violating p s then "  *" else "")
           (conflict_names t s)
           (match verdict_of k with
           | None -> ""
           | Some v ->
               Printf.sprintf "  [%s]" (Static.Depend.verdict_to_string v))
           (match distbound_of k with
           | None -> ""
           | Some d -> Printf.sprintf "  [dist>=%d]" d)
           (match legality_of k with
           | None -> ""
           | Some v ->
               Printf.sprintf "  [%s]" (Static.Legality.verdict_to_string v))))
    shown;
  let hidden = List.length edges - List.length shown in
  if hidden > 0 then
    Buffer.add_string buf (Printf.sprintf "     ... %d more\n" hidden)

let render_construct ?(max_edges = 8)
    ?(kinds = [ Shadow.Dependence.Raw ]) (t : Profile.t) ~cid =
  let buf = Buffer.create 256 in
  let c = t.prog.constructs.(cid) in
  let p = Profile.get t cid in
  Buffer.add_string buf
    (Format.asprintf "%a Tdur=%d, inst=%d%s\n" Vm.Program.pp_construct c
       p.ttotal p.instances (race_tag t cid));
  render_edges buf t p ~max_edges ~kinds;
  Buffer.contents buf

let render ?(top = 10) ?(max_edges = 8) ?(kinds = [ Shadow.Dependence.Raw ])
    (t : Profile.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Profile\n";
  let entries = Ranking.rank t in
  List.iteri
    (fun i (e : Ranking.entry) ->
      if i < top then begin
        Buffer.add_string buf
          (Printf.sprintf "%d. %s Tdur=%d, inst=%d%s\n" (i + 1) e.name e.ttotal
             e.instances (race_tag_of_status e.Ranking.race_status));
        render_edges buf t (Profile.get t e.cid) ~max_edges ~kinds
      end)
    entries;
  Buffer.contents buf
