type kind = Global | Local | Param

type info = {
  name : string;
  loc : Srcloc.t;
  kind : kind;
  mutable read : bool;
  mutable written : bool;
}

(* Scoped symbol table: innermost scope first, lexical shadowing as in
   the compiler. Resolution failure is not an error here — the lint may
   run on programs the type checker will reject, and a lint must never
   fail where the compiler would have produced a better message. *)
let resolve scopes name =
  List.find_map (List.find_opt (fun i -> i.name = name)) scopes

let mark_read scopes name =
  Option.iter (fun i -> i.read <- true) (resolve scopes name)

let mark_written scopes name =
  Option.iter (fun i -> i.written <- true) (resolve scopes name)

let rec expr scopes (e : Ast.expr) =
  match e.edesc with
  | IntLit _ -> ()
  | Var x -> mark_read scopes x
  | Index (a, i) ->
      mark_read scopes a;
      expr scopes i
  | Unop (_, e) -> expr scopes e
  | Binop (_, a, b) ->
      expr scopes a;
      expr scopes b
  | Call (_, args) ->
      (* An array argument is passed by reference: the callee may read
         or write through it, so a bare [Var] in an argument list counts
         as both. The lint has no type information to tell arrays from
         scalars here; the conservative reading avoids false "dead
         store" reports (at the cost of missing some on scalars passed
         to calls). *)
      List.iter
        (fun (a : Ast.expr) ->
          (match a.Ast.edesc with Var x -> mark_written scopes x | _ -> ());
          expr scopes a)
        args

let lvalue_write scopes = function
  | Ast.LVar (x, _) -> mark_written scopes x
  | Ast.LIndex (a, i, _) ->
      (* An indexed write through a parameter lands in the caller's
         array (arrays are passed by reference), so it is a real use —
         unlike reassigning a scalar parameter, which stays invisible. *)
      Option.iter
        (fun info ->
          info.written <- true;
          if info.kind = Param then info.read <- true)
        (resolve scopes a);
      expr scopes i

let lvalue_read scopes = function
  | Ast.LVar (x, _) -> mark_read scopes x
  | Ast.LIndex (a, i, _) ->
      mark_read scopes a;
      expr scopes i

let rec stmt scopes acc (s : Ast.stmt) =
  match s.sdesc with
  | DeclScalar (x, init) ->
      Option.iter (expr scopes) init;
      let i =
        {
          name = x;
          loc = s.sloc;
          kind = Local;
          read = false;
          written = init <> None;
        }
      in
      acc := i :: !acc;
      (match scopes with
      | top :: rest -> (i :: top) :: rest
      | [] -> [ [ i ] ])
  | DeclArray (x, _) ->
      let i =
        { name = x; loc = s.sloc; kind = Local; read = false; written = false }
      in
      acc := i :: !acc;
      (match scopes with
      | top :: rest -> (i :: top) :: rest
      | [] -> [ [ i ] ])
  | Assign (lv, e) ->
      expr scopes e;
      lvalue_write scopes lv;
      scopes
  | OpAssign (_, lv, e) ->
      (* [x += e] reads the old value and writes the new one. *)
      expr scopes e;
      lvalue_read scopes lv;
      lvalue_write scopes lv;
      scopes
  | If (c, t, f) ->
      expr scopes c;
      ignore (stmt ([] :: scopes) acc t);
      Option.iter (fun f -> ignore (stmt ([] :: scopes) acc f)) f;
      scopes
  | While (c, b) ->
      expr scopes c;
      ignore (stmt ([] :: scopes) acc b);
      scopes
  | DoWhile (b, c) ->
      ignore (stmt ([] :: scopes) acc b);
      expr scopes c;
      scopes
  | For (init, cond, update, body) ->
      (* The induction variable declared in [init] scopes over the whole
         statement, so thread the extended scope through all four parts. *)
      let inner = [] :: scopes in
      let inner = match init with Some s -> stmt inner acc s | None -> inner in
      Option.iter (expr inner) cond;
      ignore (stmt ([] :: inner) acc body);
      (match update with Some s -> ignore (stmt inner acc s) | None -> ());
      scopes
  | Break | Continue -> scopes
  | Return e ->
      Option.iter (expr scopes) e;
      scopes
  | ExprStmt e | Print e ->
      expr scopes e;
      scopes
  | Block body ->
      ignore (List.fold_left (fun sc s -> stmt sc acc s) ([] :: scopes) body);
      scopes

let program (p : Ast.program) =
  let acc = ref [] in
  let globals =
    List.map
      (fun g ->
        let name, loc =
          match g with
          | Ast.GScalar (n, _, loc) | Ast.GArray (n, _, loc) -> (n, loc)
        in
        let i = { name; loc; kind = Global; read = false; written = false } in
        acc := i :: !acc;
        i)
      p.globals
  in
  List.iter
    (fun (f : Ast.func) ->
      let params =
        List.map
          (fun prm ->
            let i =
              {
                name = Ast.param_name prm;
                loc = f.floc;
                kind = Param;
                read = false;
                written = false;
              }
            in
            acc := i :: !acc;
            i)
          f.fparams
      in
      ignore
        (List.fold_left
           (fun sc s -> stmt sc acc s)
           [ []; params; globals ] f.fbody))
    p.funcs;
  List.rev !acc
  |> List.filter_map (fun i ->
         match i.kind with
         | Param ->
             (* A parameter is initialized by every call, so the only
                interesting fact is that the callee ignores it. *)
             if not i.read then
               Some (Diag.warning i.loc "unused parameter '%s'" i.name)
             else None
         | Local | Global ->
             let what =
               match i.kind with Local -> "variable" | _ -> "global"
             in
             if (not i.read) && not i.written then
               Some (Diag.warning i.loc "unused %s '%s'" what i.name)
             else if not i.read then
               Some
                 (Diag.warning i.loc
                    "%s '%s' is assigned but never read (dead stores)" what
                    i.name)
             else None)
  |> List.sort (fun (a : Diag.warning) b ->
         match compare a.wloc b.wloc with 0 -> compare a.wmsg b.wmsg | c -> c)
