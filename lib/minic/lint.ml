type kind = Global | Local | Param

type info = {
  name : string;
  loc : Srcloc.t;
  kind : kind;
  mutable read : bool;
  mutable written : bool;
}

(* Scoped symbol table: innermost scope first, lexical shadowing as in
   the compiler. Resolution failure is not an error here — the lint may
   run on programs the type checker will reject, and a lint must never
   fail where the compiler would have produced a better message. *)
let resolve scopes name =
  List.find_map (List.find_opt (fun i -> i.name = name)) scopes

let mark_read scopes name =
  Option.iter (fun i -> i.read <- true) (resolve scopes name)

let mark_written scopes name =
  Option.iter (fun i -> i.written <- true) (resolve scopes name)

let rec expr scopes (e : Ast.expr) =
  match e.edesc with
  | IntLit _ -> ()
  | Var x -> mark_read scopes x
  | Index (a, i) ->
      mark_read scopes a;
      expr scopes i
  | Unop (_, e) -> expr scopes e
  | Binop (_, a, b) ->
      expr scopes a;
      expr scopes b
  | Call (_, args) ->
      (* An array argument is passed by reference: the callee may read
         or write through it, so a bare [Var] in an argument list counts
         as both. The lint has no type information to tell arrays from
         scalars here; the conservative reading avoids false "dead
         store" reports (at the cost of missing some on scalars passed
         to calls). *)
      List.iter
        (fun (a : Ast.expr) ->
          (match a.Ast.edesc with Var x -> mark_written scopes x | _ -> ());
          expr scopes a)
        args

let lvalue_write scopes = function
  | Ast.LVar (x, _) -> mark_written scopes x
  | Ast.LIndex (a, i, _) ->
      (* An indexed write through a parameter lands in the caller's
         array (arrays are passed by reference), so it is a real use —
         unlike reassigning a scalar parameter, which stays invisible. *)
      Option.iter
        (fun info ->
          info.written <- true;
          if info.kind = Param then info.read <- true)
        (resolve scopes a);
      expr scopes i

let lvalue_read scopes = function
  | Ast.LVar (x, _) -> mark_read scopes x
  | Ast.LIndex (a, i, _) ->
      mark_read scopes a;
      expr scopes i

let rec stmt scopes acc (s : Ast.stmt) =
  match s.sdesc with
  | DeclScalar (x, init) ->
      Option.iter (expr scopes) init;
      let i =
        {
          name = x;
          loc = s.sloc;
          kind = Local;
          read = false;
          written = init <> None;
        }
      in
      acc := i :: !acc;
      (match scopes with
      | top :: rest -> (i :: top) :: rest
      | [] -> [ [ i ] ])
  | DeclArray (x, _) ->
      let i =
        { name = x; loc = s.sloc; kind = Local; read = false; written = false }
      in
      acc := i :: !acc;
      (match scopes with
      | top :: rest -> (i :: top) :: rest
      | [] -> [ [ i ] ])
  | Assign (lv, e) ->
      expr scopes e;
      lvalue_write scopes lv;
      scopes
  | OpAssign (_, lv, e) ->
      (* [x += e] reads the old value and writes the new one. *)
      expr scopes e;
      lvalue_read scopes lv;
      lvalue_write scopes lv;
      scopes
  | If (c, t, f) ->
      expr scopes c;
      ignore (stmt ([] :: scopes) acc t);
      Option.iter (fun f -> ignore (stmt ([] :: scopes) acc f)) f;
      scopes
  | While (c, b) ->
      expr scopes c;
      ignore (stmt ([] :: scopes) acc b);
      scopes
  | DoWhile (b, c) ->
      ignore (stmt ([] :: scopes) acc b);
      expr scopes c;
      scopes
  | For (init, cond, update, body) ->
      (* The induction variable declared in [init] scopes over the whole
         statement, so thread the extended scope through all four parts. *)
      let inner = [] :: scopes in
      let inner = match init with Some s -> stmt inner acc s | None -> inner in
      Option.iter (expr inner) cond;
      ignore (stmt ([] :: inner) acc body);
      (match update with Some s -> ignore (stmt inner acc s) | None -> ());
      scopes
  | Break | Continue -> scopes
  | Return e ->
      Option.iter (expr scopes) e;
      scopes
  | ExprStmt e | Print e ->
      expr scopes e;
      scopes
  | Block body ->
      ignore (List.fold_left (fun sc s -> stmt sc acc s) ([] :: scopes) body);
      scopes

(* --- loop-shape lints ------------------------------------------------

   Two lints over loop bodies, both "this loop does redundant work every
   iteration" shapes the dependence profiler later pays for event by
   event:

   - a subscript expression whose variables are all unmodified inside
     the loop computes the same address every iteration — the load (or
     the address computation) is hoistable;
   - a loop condition mentioning no variable, array cell or call at all
     is decided at compile time (an [if] or an infinite loop in
     disguise).

   Both are proofs, not heuristics: a warning only fires when invariance
   or constness holds on every execution. Calls make globals unprovable
   — any callee may write them — so a loop containing a call disqualifies
   global variables from the invariance argument. *)

(* Scalar names (re)assigned per iteration of a loop body: assignment
   targets and declarations (a [DeclScalar] re-initializes on every
   iteration). Indexed writes mutate elements, never the index-value of
   a name, so they add nothing here. *)
let rec assigned_names (s : Ast.stmt) acc =
  match s.sdesc with
  | Ast.DeclScalar (x, _) -> x :: acc
  | Ast.DeclArray _ | Ast.Break | Ast.Continue | Ast.Return _ | Ast.ExprStmt _
  | Ast.Print _ ->
      acc
  | Ast.Assign (lv, _) | Ast.OpAssign (_, lv, _) -> (
      match lv with Ast.LVar (x, _) -> x :: acc | Ast.LIndex _ -> acc)
  | Ast.If (_, t, f) ->
      assigned_names t
        (match f with Some f -> assigned_names f acc | None -> acc)
  | Ast.While (_, b) | Ast.DoWhile (b, _) -> assigned_names b acc
  | Ast.For (init, _, update, b) ->
      let acc = match init with Some s -> assigned_names s acc | None -> acc in
      let acc =
        match update with Some s -> assigned_names s acc | None -> acc
      in
      assigned_names b acc
  | Ast.Block body -> List.fold_left (fun acc s -> assigned_names s acc) acc body

let rec expr_has_call (e : Ast.expr) =
  match e.edesc with
  | Ast.Call _ -> true
  | Ast.IntLit _ | Ast.Var _ -> false
  | Ast.Index (_, i) | Ast.Unop (_, i) -> expr_has_call i
  | Ast.Binop (_, a, b) -> expr_has_call a || expr_has_call b

let rec stmt_has_call (s : Ast.stmt) =
  match s.sdesc with
  | Ast.DeclScalar (_, init) -> Option.fold ~none:false ~some:expr_has_call init
  | Ast.DeclArray _ | Ast.Break | Ast.Continue -> false
  | Ast.Assign (lv, e) | Ast.OpAssign (_, lv, e) ->
      expr_has_call e
      || (match lv with
         | Ast.LVar _ -> false
         | Ast.LIndex (_, i, _) -> expr_has_call i)
  | Ast.If (c, t, f) ->
      expr_has_call c || stmt_has_call t
      || Option.fold ~none:false ~some:stmt_has_call f
  | Ast.While (c, b) | Ast.DoWhile (b, c) -> expr_has_call c || stmt_has_call b
  | Ast.For (init, cond, update, b) ->
      Option.fold ~none:false ~some:stmt_has_call init
      || Option.fold ~none:false ~some:expr_has_call cond
      || Option.fold ~none:false ~some:stmt_has_call update
      || stmt_has_call b
  | Ast.Return e -> Option.fold ~none:false ~some:expr_has_call e
  | Ast.ExprStmt e | Ast.Print e -> expr_has_call e
  | Ast.Block body -> List.exists stmt_has_call body

(* --- reduction-escape lint -------------------------------------------

   A statement of shape [x = x op e] / [x op= e] with an associative-
   commutative [op] inside a loop is a reduction: the transform-legality
   engine can rewrite it as per-thread partials combined at the join.
   That proof requires the accumulator's cell be touched {e only} by the
   accumulate itself — passing [x] to a call inside the same loop hands
   the callee a way to read a partial sum (or clobber it), so the
   rewrite is off the table. The lint flags exactly that shape: the
   programmer wrote a reduction, then leaked the accumulator. *)

let assoc_commutative_op = function
  | Ast.Add | Ast.Mul | Ast.BitAnd | Ast.BitOr | Ast.BitXor -> true
  | _ -> false

let rec expr_mentions x (e : Ast.expr) =
  match e.edesc with
  | Ast.Var y -> y = x
  | Ast.IntLit _ -> false
  | Ast.Index (a, i) -> a = x || expr_mentions x i
  | Ast.Unop (_, a) -> expr_mentions x a
  | Ast.Binop (_, a, b) -> expr_mentions x a || expr_mentions x b
  | Ast.Call (_, args) -> List.exists (expr_mentions x) args

(* [Some (x, op)] for [x op= e] and [x = x op e] / [x = e op x] where
   [op] is associative-commutative and [e] does not mention [x] (a
   second read of the accumulator is not a reduction). *)
let reduction_shape (s : Ast.stmt) =
  match s.sdesc with
  | Ast.OpAssign (op, Ast.LVar (x, _), e)
    when assoc_commutative_op op && not (expr_mentions x e) ->
      Some (x, op)
  | Ast.Assign (Ast.LVar (x, _), { edesc = Ast.Binop (op, a, b); _ })
    when assoc_commutative_op op -> (
      match (a.Ast.edesc, b.Ast.edesc) with
      | Ast.Var y, _ when y = x && not (expr_mentions x b) -> Some (x, op)
      | _, Ast.Var y when y = x && not (expr_mentions x a) -> Some (x, op)
      | _ -> None)
  | _ -> None

(* Reduction-shaped accumulates in the loop's {e direct} region — a
   nested loop runs its own scan, so stopping at it avoids duplicate
   warnings while its calls still count as escapes for this loop. *)
let rec direct_accums (s : Ast.stmt) acc =
  match s.sdesc with
  | Ast.While _ | Ast.DoWhile _ | Ast.For _ -> acc
  | Ast.If (_, t, f) ->
      direct_accums t
        (match f with Some f -> direct_accums f acc | None -> acc)
  | Ast.Block body -> List.fold_left (fun acc s -> direct_accums s acc) acc body
  | _ -> (
      match reduction_shape s with
      | Some (x, op) -> (x, op, s.sloc) :: acc
      | None -> acc)

(* Callees receiving [x] as a bare argument (the by-reference escape the
   usage lint also assumes conservatively). *)
let rec calls_passing x (e : Ast.expr) acc =
  match e.edesc with
  | Ast.IntLit _ | Ast.Var _ -> acc
  | Ast.Index (_, i) | Ast.Unop (_, i) -> calls_passing x i acc
  | Ast.Binop (_, a, b) -> calls_passing x a (calls_passing x b acc)
  | Ast.Call (f, args) ->
      let acc =
        if
          List.exists
            (fun (a : Ast.expr) ->
              match a.Ast.edesc with Ast.Var y -> y = x | _ -> false)
            args
        then f :: acc
        else acc
      in
      List.fold_left (fun acc a -> calls_passing x a acc) acc args

let rec stmt_calls_passing x (s : Ast.stmt) acc =
  match s.sdesc with
  | Ast.DeclScalar (_, init) ->
      Option.fold ~none:acc ~some:(fun e -> calls_passing x e acc) init
  | Ast.DeclArray _ | Ast.Break | Ast.Continue -> acc
  | Ast.Assign (lv, e) | Ast.OpAssign (_, lv, e) ->
      let acc = calls_passing x e acc in
      (match lv with
      | Ast.LVar _ -> acc
      | Ast.LIndex (_, i, _) -> calls_passing x i acc)
  | Ast.If (c, t, f) ->
      let acc = calls_passing x c acc in
      let acc = stmt_calls_passing x t acc in
      Option.fold ~none:acc ~some:(fun f -> stmt_calls_passing x f acc) f
  | Ast.While (c, b) | Ast.DoWhile (b, c) ->
      stmt_calls_passing x b (calls_passing x c acc)
  | Ast.For (init, cond, update, b) ->
      let acc =
        Option.fold ~none:acc ~some:(fun s -> stmt_calls_passing x s acc) init
      in
      let acc =
        Option.fold ~none:acc ~some:(fun e -> calls_passing x e acc) cond
      in
      let acc =
        Option.fold ~none:acc ~some:(fun s -> stmt_calls_passing x s acc) update
      in
      stmt_calls_passing x b acc
  | Ast.Return e ->
      Option.fold ~none:acc ~some:(fun e -> calls_passing x e acc) e
  | Ast.ExprStmt e | Ast.Print e -> calls_passing x e acc
  | Ast.Block body ->
      List.fold_left (fun acc s -> stmt_calls_passing x s acc) acc body

(* The innermost loop an expression sits in, as seen by the walk. *)
type loop_ctx = {
  assigned : string list;  (** scalar names written per iteration *)
  has_call : bool;  (** any call anywhere in the loop *)
}

let loop_lints (p : Ast.program) =
  let globals =
    List.map
      (function Ast.GScalar (n, _, _) | Ast.GArray (n, _, _) -> n)
      p.globals
  in
  let scalar_globals =
    List.filter_map
      (function Ast.GScalar (n, _, _) -> Some n | Ast.GArray _ -> None)
      p.globals
  in
  let warnings = ref [] in
  let warn loc fmt = Printf.ksprintf (fun m ->
      warnings := Diag.warning loc "%s" m :: !warnings) fmt
  in
  (* [Some vars] when every variable the subscript reads is provably
     unchanged across iterations; [None] when anything blocks the proof
     (a call, an array cell, or an assigned/unprovable variable). *)
  let rec invariant_vars ctx (e : Ast.expr) =
    match e.edesc with
    | Ast.IntLit _ -> Some []
    | Ast.Var x ->
        if List.mem x ctx.assigned then None
        else if ctx.has_call && List.mem x globals then None
        else Some [ x ]
    | Ast.Index _ | Ast.Call _ -> None
    | Ast.Unop (_, a) -> invariant_vars ctx a
    | Ast.Binop (_, a, b) -> (
        match (invariant_vars ctx a, invariant_vars ctx b) with
        | Some va, Some vb -> Some (va @ vb)
        | _ -> None)
  in
  let check_subscript ctx name (i : Ast.expr) =
    match invariant_vars ctx i with
    | Some (_ :: _ as vars) ->
        warn i.eloc
          "loop-invariant subscript of '%s' (%s never change%s in the loop)"
          name
          (String.concat ", " (List.sort_uniq compare vars))
          (if List.length (List.sort_uniq compare vars) = 1 then "s" else "")
    | _ -> ()
  in
  let rec check_expr ctx (e : Ast.expr) =
    match e.edesc with
    | Ast.IntLit _ | Ast.Var _ -> ()
    | Ast.Index (a, i) ->
        Option.iter (fun ctx -> check_subscript ctx a i) ctx;
        check_expr ctx i
    | Ast.Unop (_, a) -> check_expr ctx a
    | Ast.Binop (_, a, b) ->
        check_expr ctx a;
        check_expr ctx b
    | Ast.Call (_, args) -> List.iter (check_expr ctx) args
  in
  let check_lvalue ctx = function
    | Ast.LVar _ -> ()
    | Ast.LIndex (a, i, _) ->
        Option.iter (fun c -> check_subscript c a i) ctx;
        check_expr ctx i
  in
  (* No variable, array cell or call: the condition's value is fixed. *)
  let rec const_cond (e : Ast.expr) =
    match e.edesc with
    | Ast.IntLit _ -> true
    | Ast.Var _ | Ast.Index _ | Ast.Call _ -> false
    | Ast.Unop (_, a) -> const_cond a
    | Ast.Binop (_, a, b) -> const_cond a && const_cond b
  in
  let check_cond (c : Ast.expr) =
    if const_cond c then warn c.eloc "loop condition is provably constant"
  in
  let enter_loop parts_assigned parts_call =
    {
      assigned = List.concat parts_assigned;
      has_call = List.exists (fun b -> b) parts_call;
    }
  in
  (* One loop's reduction-escape scan: [stmts] are the loop's direct
     statements (body, plus a [for]'s update), [cond_exprs] its
     condition. *)
  let check_reduction_escape cond_exprs stmts =
    let accums =
      List.rev (List.fold_left (fun acc s -> direct_accums s acc) [] stmts)
      (* a variable the loop condition reads drives the trip count — an
         induction/control variable ([i++] under [i < n]), never a
         reduction accumulator *)
      |> List.filter (fun (x, _, _) ->
             not (List.exists (expr_mentions x) cond_exprs))
    in
    List.iter
      (fun (x, op, loc) ->
        let callees =
          List.fold_left (fun acc s -> stmt_calls_passing x s acc) [] stmts
        in
        let callees =
          List.fold_left (fun acc e -> calls_passing x e acc) callees cond_exprs
        in
        match List.sort_uniq compare callees with
        | [] -> ()
        | f :: _ ->
            warn loc
              "reduction-shaped accumulator '%s' ('%s' shape) escapes via \
               call to '%s' (blocks the per-thread reduction rewrite)"
              x
              (Ast.binop_to_string op)
              f)
      accums
  in
  (* --- shared-write lint ---------------------------------------------

     A loop that writes a global scalar is a race candidate the moment
     its iterations are spawned: the write lands in memory every other
     iteration shares. Two shapes survive the spawn — an iteration that
     writes the cell before any read of it (privatizable: each thread
     gets its own copy) and a reduction-shaped accumulate (rewritten as
     per-thread partials). Anything else — a read of another iteration's
     value before the write, or a write only some iterations perform —
     defeats both transforms, so flag it at the line that wrote it.
     Innermost judgement, as with the invariance lint: a nested loop's
     writes are judged by its own scan, not the enclosing one's. *)
  let check_shared_writes cond_exprs stmts =
    let first = Hashtbl.create 4 in
    (* name -> `Write | `Read: the first counted access *)
    let wrote = Hashtbl.create 4 in
    (* name -> loc of the first non-reduction write *)
    let accum = Hashtbl.create 4 in
    let is_global x = List.mem x scalar_globals in
    let see_read x =
      if is_global x && not (Hashtbl.mem first x) then
        Hashtbl.replace first x `Read
    in
    let see_write ~cond x loc =
      if is_global x then begin
        if not (Hashtbl.mem wrote x) then Hashtbl.replace wrote x loc;
        if (not cond) && not (Hashtbl.mem first x) then
          Hashtbl.replace first x `Write
      end
    in
    let rec expr_reads (e : Ast.expr) =
      match e.edesc with
      | Ast.IntLit _ -> ()
      | Ast.Var x -> see_read x
      | Ast.Index (_, i) -> expr_reads i
      | Ast.Unop (_, a) -> expr_reads a
      | Ast.Binop (_, a, b) ->
          expr_reads a;
          expr_reads b
      | Ast.Call (_, args) -> List.iter expr_reads args
    in
    let rec walk ~cond (s : Ast.stmt) =
      match reduction_shape s with
      | Some (x, _) when is_global x ->
          (* the licensed accumulate: its own read/write do not count,
             but the folded expression may read other globals *)
          Hashtbl.replace accum x ();
          (match s.sdesc with
          | Ast.Assign (_, e) | Ast.OpAssign (_, _, e) -> expr_reads e
          | _ -> ())
      | _ -> (
          match s.sdesc with
          | Ast.DeclScalar (_, init) -> Option.iter expr_reads init
          | Ast.DeclArray _ | Ast.Break | Ast.Continue -> ()
          (* a nested loop's writes belong to its own scan *)
          | Ast.While _ | Ast.DoWhile _ | Ast.For _ -> ()
          | Ast.Assign (lv, e) -> (
              expr_reads e;
              match lv with
              | Ast.LVar (x, _) -> see_write ~cond x s.sloc
              | Ast.LIndex (_, i, _) -> expr_reads i)
          | Ast.OpAssign (_, lv, e) -> (
              expr_reads e;
              match lv with
              | Ast.LVar (x, _) ->
                  see_read x;
                  see_write ~cond x s.sloc
              | Ast.LIndex (_, i, _) -> expr_reads i)
          | Ast.If (c, t, f) ->
              expr_reads c;
              walk ~cond:true t;
              Option.iter (walk ~cond:true) f
          | Ast.Return e -> Option.iter expr_reads e
          | Ast.ExprStmt e | Ast.Print e -> expr_reads e
          | Ast.Block body -> List.iter (walk ~cond) body)
    in
    (* the loop condition's reads precede (the next) iteration's body,
       so they count as reads of another iteration's value *)
    List.iter expr_reads cond_exprs;
    List.iter (walk ~cond:false) stmts;
    Hashtbl.iter
      (fun x loc ->
        if not (Hashtbl.mem accum x) then
          let reason =
            match Hashtbl.find_opt first x with
            | Some `Write -> None (* write-first: the privatizable shape *)
            | Some `Read -> Some "an iteration reads it before writing"
            | None -> Some "only some iterations write it"
          in
          Option.iter
            (fun reason ->
              warn loc
                "shared global '%s' written in a loop is neither privatizable \
                 nor a reduction (%s) — spawned iterations would race on it"
                x reason)
            reason)
      wrote
  in
  let rec check_stmt ctx (s : Ast.stmt) =
    match s.sdesc with
    | Ast.DeclScalar (_, init) -> Option.iter (check_expr ctx) init
    | Ast.DeclArray _ | Ast.Break | Ast.Continue -> ()
    | Ast.Assign (lv, e) | Ast.OpAssign (_, lv, e) ->
        check_expr ctx e;
        check_lvalue ctx lv
    | Ast.If (c, t, f) ->
        check_expr ctx c;
        check_stmt ctx t;
        Option.iter (check_stmt ctx) f
    | Ast.While (c, b) ->
        check_cond c;
        let inner =
          enter_loop [ assigned_names b [] ] [ expr_has_call c; stmt_has_call b ]
        in
        check_expr (Some inner) c;
        check_stmt (Some inner) b;
        check_reduction_escape [ c ] [ b ];
        check_shared_writes [ c ] [ b ]
    | Ast.DoWhile (b, c) ->
        check_cond c;
        let inner =
          enter_loop [ assigned_names b [] ] [ expr_has_call c; stmt_has_call b ]
        in
        check_stmt (Some inner) b;
        check_expr (Some inner) c;
        check_reduction_escape [ c ] [ b ];
        check_shared_writes [ c ] [ b ]
    | Ast.For (init, cond, update, b) ->
        (* [init] runs once: it is checked against the {e enclosing}
           context, and its assignments do not make a variable
           loop-variant. A [for] with no condition never warns (there is
           nothing to be constant). *)
        Option.iter (check_stmt ctx) init;
        Option.iter check_cond cond;
        let inner =
          enter_loop
            [
              assigned_names b [];
              (match update with Some u -> assigned_names u [] | None -> []);
            ]
            [
              (match cond with Some c -> expr_has_call c | None -> false);
              (match update with Some u -> stmt_has_call u | None -> false);
              stmt_has_call b;
            ]
        in
        Option.iter (check_expr (Some inner)) cond;
        check_stmt (Some inner) b;
        Option.iter (check_stmt (Some inner)) update;
        check_reduction_escape
          (Option.to_list cond)
          (b :: Option.to_list update);
        check_shared_writes (Option.to_list cond) (b :: Option.to_list update)
    | Ast.Return e -> Option.iter (check_expr ctx) e
    | Ast.ExprStmt e | Ast.Print e -> check_expr ctx e
    | Ast.Block body -> List.iter (check_stmt ctx) body
  in
  List.iter
    (fun (f : Ast.func) -> List.iter (check_stmt None) f.fbody)
    p.funcs;
  !warnings

let program (p : Ast.program) =
  let acc = ref [] in
  let globals =
    List.map
      (fun g ->
        let name, loc =
          match g with
          | Ast.GScalar (n, _, loc) | Ast.GArray (n, _, loc) -> (n, loc)
        in
        let i = { name; loc; kind = Global; read = false; written = false } in
        acc := i :: !acc;
        i)
      p.globals
  in
  List.iter
    (fun (f : Ast.func) ->
      let params =
        List.map
          (fun prm ->
            let i =
              {
                name = Ast.param_name prm;
                loc = f.floc;
                kind = Param;
                read = false;
                written = false;
              }
            in
            acc := i :: !acc;
            i)
          f.fparams
      in
      ignore
        (List.fold_left
           (fun sc s -> stmt sc acc s)
           [ []; params; globals ] f.fbody))
    p.funcs;
  let usage =
    List.rev !acc
    |> List.filter_map (fun i ->
         match i.kind with
         | Param ->
             (* A parameter is initialized by every call, so the only
                interesting fact is that the callee ignores it. *)
             if not i.read then
               Some (Diag.warning i.loc "unused parameter '%s'" i.name)
             else None
         | Local | Global ->
             let what =
               match i.kind with Local -> "variable" | _ -> "global"
             in
             if (not i.read) && not i.written then
               Some (Diag.warning i.loc "unused %s '%s'" what i.name)
             else if not i.read then
               Some
                 (Diag.warning i.loc
                    "%s '%s' is assigned but never read (dead stores)" what
                    i.name)
             else None)
  in
  usage @ loop_lints p
  |> List.sort (fun (a : Diag.warning) b ->
         match compare a.wloc b.wloc with 0 -> compare a.wmsg b.wmsg | c -> c)
