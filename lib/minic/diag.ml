exception Error of string * Srcloc.t

let error loc fmt = Format.kasprintf (fun msg -> raise (Error (msg, loc))) fmt

type warning = { wmsg : string; wloc : Srcloc.t }

let warning wloc fmt = Format.kasprintf (fun wmsg -> { wmsg; wloc }) fmt

let pp_warning ppf w =
  Format.fprintf ppf "%a: warning: %s" Srcloc.pp w.wloc w.wmsg

let wrap f =
  match f () with
  | v -> Ok v
  | exception Error (msg, loc) ->
      Result.Error (Format.asprintf "%a: %s" Srcloc.pp loc msg)
