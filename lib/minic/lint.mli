(** Frontend lints: non-fatal diagnostics over the checked AST.

    Usage lints — values that never flow anywhere:
    - {e unused}: a global, local or parameter that is never referenced;
    - {e dead store}: a variable that is assigned (counting declaration
      initializers) but never read — every store to it is wasted work,
      and under profiling each one still fires a shadow-memory event.

    Arrays count as read/written through any element. Passing an array
    by reference counts as both (the callee may do either).

    Loop-shape lints — per-iteration work a loop provably repeats:
    - {e loop-invariant subscript}: an array subscript whose variables
      are all unmodified inside the (innermost enclosing) loop addresses
      the same cell every iteration — the access is hoistable. The proof
      is conservative: a subscript containing a call or an array cell
      never warns, and a loop containing any call disqualifies global
      variables (the callee may write them).
    - {e provably-constant loop condition}: a [while]/[do-while]/[for]
      condition mentioning no variable, array cell or call has one
      compile-time value — the loop is an [if] or an infinite loop in
      disguise. A [for] with no condition is the idiomatic infinite
      loop and never warns.
    - {e reduction accumulator escapes}: a loop statement of shape
      [x op= e] or [x = x op e] with an associative-commutative [op]
      ([+], [*], [&], [|], [^]) is a reduction the transform-legality
      engine could rewrite as per-thread partials — unless the same
      loop also passes [x] bare to a call, handing the callee a view of
      a partial sum. The warning fires on exactly that pair; a
      non-associative op ([-], [/], shifts), a second read of [x] in
      [e], a call-free loop, or an accumulator the loop condition reads
      (an induction variable, not a reduction) never warns.
    - {e shared global written in a loop}: a global scalar a loop writes
      is a race the moment the loop's iterations are spawned — unless
      the iteration provably writes it before reading it (the
      privatizable shape) or the write is a reduction-shaped accumulate
      (rewritable as per-thread partials). A read of another iteration's
      value before the write, or a write only some iterations perform,
      defeats both transforms and warns at the writing line. Judged per
      innermost loop; array cells are the static race detector's job,
      not this lint's. *)

val program : Ast.program -> Diag.warning list
(** All warnings, ordered by source location (then message) — the order
    is deterministic for a given program. *)
