(** Frontend lints: non-fatal diagnostics over the checked AST.

    Two lints, both about values that never flow anywhere:
    - {e unused}: a global, local or parameter that is never referenced;
    - {e dead store}: a variable that is assigned (counting declaration
      initializers) but never read — every store to it is wasted work,
      and under profiling each one still fires a shadow-memory event.

    Arrays count as read/written through any element. Passing an array
    by reference counts as both (the callee may do either). *)

val program : Ast.program -> Diag.warning list
(** All warnings, ordered by source location (then message) — the order
    is deterministic for a given program. *)
