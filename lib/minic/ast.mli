(** Abstract syntax of Mini-C.

    Mini-C is the C subset Alchemist's workloads are written in: integer
    scalars, fixed-size integer arrays (globals, locals, and by-reference
    array parameters), functions, and the full structured control-flow zoo
    ([if]/[else], [while], [do]/[while], [for], [break], [continue],
    [return]). Every node carries its source location. *)

type unop = Neg | LogNot | BitNot

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | BitAnd
  | BitOr
  | BitXor
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | LogAnd  (** short-circuit && *)
  | LogOr  (** short-circuit || *)

type expr = { edesc : edesc; eloc : Srcloc.t }

and edesc =
  | IntLit of int
  | Var of string
  | Index of string * expr  (** [a[i]] *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list

type lvalue =
  | LVar of string * Srcloc.t
  | LIndex of string * expr * Srcloc.t  (** [a[i] = ...] *)

type stmt = { sdesc : sdesc; sloc : Srcloc.t }

and sdesc =
  | DeclScalar of string * expr option  (** [int x;] / [int x = e;] *)
  | DeclArray of string * int  (** [int a[N];] *)
  | Assign of lvalue * expr
  | OpAssign of binop * lvalue * expr  (** [x += e] etc.; [x++] is [x += 1] *)
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | DoWhile of stmt * expr
  | For of stmt option * expr option * stmt option * stmt
      (** [for (init; cond; update) body]; missing cond means [1]. *)
  | Break
  | Continue
  | Return of expr option
  | ExprStmt of expr  (** expression evaluated for effect, e.g. a call *)
  | Print of expr
  | Block of stmt list

type ret_ty = RetInt | RetVoid

type param = PScalar of string | PArray of string
(** [PArray] parameters are passed by reference, like C array parameters. *)

type func = {
  fname : string;
  fret : ret_ty;
  fparams : param list;
  fbody : stmt list;
  floc : Srcloc.t;
}

type global =
  | GScalar of string * int * Srcloc.t  (** name, initial value *)
  | GArray of string * int * Srcloc.t  (** name, length (zero-initialized) *)

type program = { globals : global list; funcs : func list }

val global_name : global -> string
val param_name : param -> string

val pp_unop : Format.formatter -> unop -> unit
val pp_binop : Format.formatter -> binop -> unit

val binop_to_string : binop -> string
(** Source spelling, e.g. ["+"], ["^"]. *)
