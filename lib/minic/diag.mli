(** Diagnostics for the Mini-C frontend. *)

exception Error of string * Srcloc.t
(** Raised by the lexer, parser and type checker on malformed input. *)

val error : Srcloc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [error loc fmt ...] raises {!Error} with a formatted message. *)

val wrap : (unit -> 'a) -> ('a, string) result
(** Runs a frontend phase, converting {!Error} into [Error msg] where [msg]
    includes the source location. *)

type warning = { wmsg : string; wloc : Srcloc.t }
(** A non-fatal diagnostic (see {!Lint}): the program compiles and runs,
    but something about it deserves the user's attention. *)

val warning : Srcloc.t -> ('a, Format.formatter, unit, warning) format4 -> 'a
(** [warning loc fmt ...] builds a {!warning} with a formatted message. *)

val pp_warning : Format.formatter -> warning -> unit
(** Renders as ["file:line:col: warning: msg"] (matches the {!Error}
    rendering of {!wrap}, with a [warning:] marker). *)
