(* Mini-C re-implementation of the dependence structure of par2cmdline
   (paper §IV-B2, Tables IV and V).

   Par2 creates recovery data with GF(256) Reed-Solomon coding. The two
   sites the paper parallelized:
   - the loop in Par2Creator::OpenSourceFiles (489-analog): per source
     file, read and hash the contents; the paper's profile showed exactly
     one violating static RAW — a conflict when a file is closed — fixed
     by moving file closing after the join. We mirror it with the shared
     [open_files] counter updated at each close;
   - the loop in Par2Creator::ProcessData (887-analog): one output
     (recovery) block per iteration, each accumulating
     [gfmul(coeff(ob,ib), input(ib))] over all input blocks into its own
     slice. The paper's text calls the loop clean while its Table IV
     lists one violating static RAW; ours is the progress display
     counter, advanced once per processed input block, whose
     carried chain spans each whole iteration.

   GF(256) arithmetic uses the standard log/antilog tables over the
   0x11d polynomial, built once at startup. *)

let source ~scale =
  Printf.sprintf
    {|// mini-par2: GF(256) Reed-Solomon recovery-block creator.
int gflog[256];
int gfexp[512];
int filedata[8192];
int file_hash[64];
int file_len[64];
int open_files;
int input_blocks[4096];
int recovery[4096];
int nfiles;
int block_len;
int nrec;
int progress;
int seed;

int rnd(int m) {
  seed = (seed * 1103515 + 12345) & 0x7ffffff;
  return seed %% m;
}

// Build GF(256) log/antilog tables for polynomial 0x11d.
void gf_init() {
  int x = 1;
  for (int i = 0; i < 255; i++) {
    gfexp[i] = x;
    gflog[x] = i;
    x = x << 1;
    if (x & 256) {
      x = (x ^ 0x11d) & 255;
    }
  }
  for (int i = 255; i < 512; i++) {
    gfexp[i] = gfexp[i - 255];
  }
}

int gfmul(int a, int b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  return gfexp[gflog[a & 255] + gflog[b & 255]];
}

// Read and hash one source file; closing bumps the shared counter (the
// paper's one violating RAW on this loop).
void open_one_file(int f) {
  int h = 0;
  for (int i = 0; i < block_len * 4; i++) {
    int b = rnd(256);
    filedata[i & 8191] = b;
    h = (h * 31 + b) & 0xffffff;
  }
  // full-file verification hash (par2 hashes each source file with MD5
  // both per 16k block and whole-file; this is the dominant serial cost
  // of creation besides the Reed-Solomon pass)
  for (int pass = 0; pass < 3; pass++) {
    for (int i = 0; i < block_len * 4; i++) {
      int b = filedata[i & 8191];
      h = (h * 33 + (b ^ (h >> 11)) + pass) & 0xffffff;
      h = (h + ((b << 7) ^ (h >> 5))) & 0xffffff;
    }
    file_hash[(f * 4 + pass) & 63] = h;
  }
  file_hash[f & 63] = h;
  file_len[f & 63] = block_len * 4;
  // slice this file into input blocks
  for (int k = 0; k < 4; k++) {
    for (int i = 0; i < block_len; i++) {
      input_blocks[((f * 4 + k) * block_len + i) & 4095] =
          filedata[(k * block_len + i) & 8191];
    }
  }
  open_files++;   // file close bookkeeping: the shared conflict
}

// The OpenSourceFiles loop (489-analog).
void open_source_files() {
  for (int f = 0; f < nfiles; f++) {
    open_one_file(f);
  }
}

// The ProcessData loop (887-analog): one recovery block per iteration.
void process_data() {
  int nin = nfiles * 4;
  for (int ob = 0; ob < nrec; ob++) {
    for (int i = 0; i < block_len; i++) {
      recovery[(ob * block_len + i) & 4095] = 0;
    }
    for (int ib = 0; ib < nin; ib++) {
      int coeff = gfexp[((ob + 1) * (ib + 1)) %% 255];
      for (int i = 0; i < block_len; i++) {
        recovery[(ob * block_len + i) & 4095] =
            recovery[(ob * block_len + i) & 4095]
            ^ gfmul(coeff, input_blocks[(ib * block_len + i) & 4095]);
      }
      progress++;   // the progress display par2 advances per processed
                    // input block, so the counter is touched throughout
                    // the output block's accumulation, not once at its end
    }
  }
}

int main() {
  seed = 555;
  nfiles = 4;
  block_len = %d;
  nrec = 8;
  gf_init();
  open_source_files();
  process_data();
  // verify the first recovery block only (written at loop start, so the
  // read's distance exceeds any iteration duration)
  int check = 0;
  for (int i = 0; i < block_len; i++) {
    check ^= recovery[i & 4095];
  }
  print(check);
  print(open_files);
  print(progress);
  return 0;
}
|}
    scale

let workload =
  {
    Workload.name = "par2";
    description = "GF(256) Reed-Solomon recovery-block creation (par2cmdline)";
    source;
    default_scale = 96;
    test_scale = 24;
    sites =
      [
        {
          Workload.site_name = "loop in Par2Creator::ProcessData (887-analog)";
          locate = Workload.loop_in "process_data" ~nth:0;
          privatize = [];
          reduce = [ "progress" ];
          spawn_overhead = None;
        };
        {
          Workload.site_name = "loop in Par2Creator::OpenSourceFiles (489-analog)";
          locate = Workload.loop_in "open_source_files" ~nth:0;
          privatize = [ "filedata" ];
          reduce = [ "open_files"; "seed" ];
          spawn_overhead = None;
        };
      ];
    prior_work_site = None;
  }
