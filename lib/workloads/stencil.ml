(* A 1-D seismic wavefield kernel with fixed-lag taps — the distance
   engine's showcase workload (not a Table III row).

   The Table III re-implementations carry their dependences through
   scalars, pointers-into-pools and modulo-masked buffers, so the
   classical distance tests (DESIGN.md §7) prove plenty of [No_dep]
   facts but almost no [>= 1] iteration distances on edges that
   actually occur. This kernel is the opposite: its update loops read
   the field at fixed lags (4, 5 and 6 iterations back) with affine
   unit-stride subscripts, so strong SIV proves an exact carried
   distance for every tap — persisted as version-3 [distbound] lines —
   and the disjoint-bands pass over [scratch] gives the range test a
   same-array access pair only distance promotion can prune. *)

let source ~scale =
  let n = scale in
  Printf.sprintf
    {|// mini-stencil: 1-D seismic wavefield update with fixed-lag taps.
int wave[8192];
int vel[8192];
int pressure[8192];
int scratch[160];
int checksum;
int seed;

int rnd(int m) {
  seed = (seed * 1103515 + 12345) & 0x7ffffff;
  return seed %% m;
}

// Deterministic survey geometry: velocity model and initial wavefield.
void init_field(int n) {
  for (int i = 0; i < n; i++) {
    wave[i] = rnd(2048) - 1024;
    vel[i] = rnd(255) + 1;
    pressure[i] = 0;
  }
}

// Serial reduction over the final field (kept out of the taps' loops).
int fold_field(int n) {
  int acc = 0;
  for (int i = 0; i < n; i++) {
    acc = (acc + wave[i] + pressure[i]) & 0xffffff;
  }
  return acc;
}

int main() {
  seed = 20090214;
  checksum = 0;
  init_field(%d);
  // lag-4 tap: every carried RAW on wave is exactly 4 iterations apart
  for (int i = 4; i < %d; i++) {
    wave[i] = (wave[i - 4] + vel[i]) & 0xffffff;
  }
  // lag-5 tap on vel
  for (int i = 5; i < %d; i++) {
    vel[i] = (vel[i - 5] + wave[i]) & 0xffffff;
  }
  // lag-6 tap on pressure
  for (int i = 6; i < %d; i++) {
    pressure[i] = (pressure[i - 6] + wave[i] - vel[i]) & 0xffffff;
  }
  // disjoint bands of scratch: writes hit [0,64), reads hit [80,144)
  for (int i = 0; i < 64; i++) {
    scratch[i] = wave[i] & 15;
  }
  for (int i = 0; i < 64; i++) {
    checksum = (checksum + scratch[i + 80]) & 0xffffff;
  }
  checksum = (checksum + fold_field(%d)) & 0xffffff;
  int guard = scratch[0] + scratch[80];
  checksum = (checksum + guard) & 0xffffff;
  print(wave[%d - 1]);
  print(vel[%d - 1]);
  print(pressure[%d - 1]);
  print(checksum);
  return 0;
}
|}
    n n n n n n n n

let workload =
  {
    Workload.name = "stencil";
    description = "1-D seismic stencil with provable carried distances 4/5/6";
    source;
    default_scale = 8_192;
    test_scale = 512;
    sites = [];
    prior_work_site = None;
  }
