let all =
  [
    Mini_parser.workload;
    Mini_bzip2.workload;
    Mini_gzip.workload;
    Mini_lisp.workload;
    Mini_ogg.workload;
    Aes_ctr.workload;
    Par2.workload;
    Delaunay.workload;
    Stencil.workload;
  ]

let find name = List.find (fun (w : Workload.t) -> w.name = name) all
let names = List.map (fun (w : Workload.t) -> w.Workload.name) all
