(** Whole-program control-flow facts consumed by the profiler's runtime.

    The runtime indexing rules (paper Fig. 5) need exactly one fact per
    predicate: the pc of its immediate post-dominator — the execution point
    that closes the construct the predicate opened. *)

type t = {
  ipdom_of_pc : int array;
      (** indexed by pc; for a [BrIf]/[BrLoop] predicate, the pc of the
          first instruction of its immediate post-dominator block (the
          function's epilogue when the predicate cannot reach the exit
          otherwise); [-1] for non-predicate pcs *)
  loop_depth_of_pc : int array;  (** static natural-loop nesting depth *)
}

val analyze : Vm.Program.t -> t

val validate : Vm.Program.t -> t -> string list
(** Cross-checks compiler construct tags against the CFA: every predicate
    has an ipdom; every reachable [BrLoop] predicate heads a loop —
    natural, or the degenerate header-only loop {!Loops} registers when
    the body always breaks. Returns human-readable discrepancy messages
    (empty = consistent). *)

val loops_of : Vm.Program.t -> Cfg.t -> Dominance.t -> Loops.t
(** {!Loops.analyze} with every reachable [BrLoop] block passed as a
    potential degenerate header — the loop view the rest of the analysis
    stack (nesting depth, induction/trip-count scopes) is built on. *)
