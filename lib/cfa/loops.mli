(** Natural-loop detection over a CFG.

    A back edge is an edge [u -> h] where [h] dominates [u]; the natural
    loop of the edge is [h] plus every block that reaches [u] without
    passing through [h]. Loops with the same header are merged.

    A loop whose body always breaks (the degenerate [while(1){...break}]
    shape) has its back edge in unreachable code, so no natural loop
    forms around its header. Callers that know which blocks are loop
    headers (they end in a [BrLoop] predicate) can pass them as
    [extra_headers]: any such block not already heading a natural loop
    is registered as a header-only {!loop} with [degenerate = true], so
    nesting depth and trip-count scopes still see one loop per source
    loop construct. *)

type loop = {
  header : int;  (** header block id *)
  body : int list;  (** all block ids in the loop, including the header *)
  back_edges : (int * int) list;
  degenerate : bool;
      (** no back edge: the body always breaks, so the loop runs its
          header at most once per entry *)
}

type t = {
  loops : loop array;
  depth : int array;  (** per block: number of loops containing it *)
}

val analyze : ?extra_headers:int list -> Cfg.t -> Dominance.t -> t

val in_loop : t -> int -> bool
(** Is this block inside any natural loop (degenerate ones included)? *)
