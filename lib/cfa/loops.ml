type loop = {
  header : int;
  body : int list;
  back_edges : (int * int) list;
  degenerate : bool;
}

type t = { loops : loop array; depth : int array }

let analyze ?(extra_headers = []) (cfg : Cfg.t) (dom : Dominance.t) =
  let n = Array.length cfg.blocks in
  (* Collect back edges grouped by header. *)
  let by_header = Hashtbl.create 8 in
  Array.iter
    (fun (b : Cfg.block) ->
      List.iter
        (fun s ->
          if Dominance.dominates dom s b.bid then
            Hashtbl.replace by_header s
              ((b.bid, s)
              :: (Option.value ~default:[] (Hashtbl.find_opt by_header s))))
        b.succs)
    cfg.blocks;
  let loops = ref [] in
  Hashtbl.iter
    (fun header back_edges ->
      (* Natural loop: header + reverse-reachable from tails w/o header. *)
      let in_body = Array.make n false in
      in_body.(header) <- true;
      let stack = Stack.create () in
      List.iter (fun (u, _) -> if not in_body.(u) then begin
            in_body.(u) <- true;
            Stack.push u stack
          end)
        back_edges;
      while not (Stack.is_empty stack) do
        let b = Stack.pop stack in
        List.iter
          (fun p ->
            if not in_body.(p) then begin
              in_body.(p) <- true;
              Stack.push p stack
            end)
          cfg.blocks.(b).preds
      done;
      let body = ref [] in
      for b = n - 1 downto 0 do
        if in_body.(b) then body := b :: !body
      done;
      loops := { header; body = !body; back_edges; degenerate = false } :: !loops)
    by_header;
  (* Degenerate loops: a loop header whose body always breaks leaves the
     back edge in unreachable code, so no back edge targets it and no
     natural loop forms — yet the source construct is a loop and its
     header evaluates (once per entry). Register a header-only loop so
     clients see one loop per loop construct: nesting depth counts it,
     and trip-count analyses treat it as a loop with no back edge. *)
  List.iter
    (fun h ->
      if h >= 0 && h < n && not (Hashtbl.mem by_header h) then
        loops :=
          { header = h; body = [ h ]; back_edges = []; degenerate = true }
          :: !loops)
    (List.sort_uniq compare extra_headers);
  let loops = Array.of_list !loops in
  let depth = Array.make n 0 in
  Array.iter
    (fun l -> List.iter (fun b -> depth.(b) <- depth.(b) + 1) l.body)
    loops;
  { loops; depth }

let in_loop t b = t.depth.(b) > 0
