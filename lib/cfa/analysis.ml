type t = { ipdom_of_pc : int array; loop_depth_of_pc : int array }

let analyze (prog : Vm.Program.t) =
  let n = Array.length prog.code in
  let ipdom_of_pc = Array.make n (-1) in
  let loop_depth_of_pc = Array.make n 0 in
  Array.iter
    (fun (f : Vm.Program.func_info) ->
      let cfg = Cfg.build prog f in
      let pdom = Dominance.postdom_of_cfg cfg in
      let dom = Dominance.of_cfg cfg in
      let loops = Loops.analyze cfg dom in
      Array.iter
        (fun (b : Cfg.block) ->
          (* Per-pc loop depth. *)
          for pc = b.first to b.last do
            loop_depth_of_pc.(pc) <- loops.Loops.depth.(b.bid)
          done;
          match prog.code.(b.last) with
          | Vm.Instr.Br { kind = Vm.Instr.BrIf | Vm.Instr.BrLoop; _ } ->
              let ip = pdom.Dominance.idom.(b.bid) in
              let target_pc =
                if ip = -1 || b.bid = cfg.exit_bid then f.epilogue
                else cfg.blocks.(ip).first
              in
              ipdom_of_pc.(b.last) <- target_pc
          | _ -> ())
        cfg.blocks)
    prog.funcs;
  { ipdom_of_pc; loop_depth_of_pc }

let validate (prog : Vm.Program.t) (t : t) =
  let issues = ref [] in
  let add fmt = Printf.ksprintf (fun m -> issues := m :: !issues) fmt in
  Array.iteri
    (fun pc instr ->
      match instr with
      | Vm.Instr.Br { kind = Vm.Instr.BrIf; _ } | Vm.Instr.Br { kind = Vm.Instr.BrLoop; _ }
        ->
          if t.ipdom_of_pc.(pc) = -1 then
            add "predicate at pc %d has no immediate post-dominator" pc
      | _ -> ())
    prog.code;
  (* Every BrLoop predicate should be part of a natural loop — unless
     the loop degenerated: a body that always breaks leaves the back
     edge in unreachable code, so no natural loop exists, yet the
     predicate legitimately evaluates (once). Only complain when the
     predicate is reachable and can actually re-reach itself. *)
  Array.iter
    (fun (f : Vm.Program.func_info) ->
      let cfg = Cfg.build prog f in
      let dom = Dominance.of_cfg cfg in
      let loops = Loops.analyze cfg dom in
      let reachable bid =
        bid = cfg.Cfg.entry_bid || dom.Dominance.idom.(bid) <> -1
      in
      let cycles_back_to bid =
        (* Is there a reachable-node path from a successor of [bid] back
           to [bid]? *)
        let n = Array.length cfg.Cfg.blocks in
        let seen = Array.make n false in
        let rec go b =
          b = bid
          || (not seen.(b)) && reachable b
             && begin
                  seen.(b) <- true;
                  List.exists go cfg.Cfg.blocks.(b).Cfg.succs
                end
        in
        List.exists
          (fun s -> reachable s && go s)
          cfg.Cfg.blocks.(bid).Cfg.succs
      in
      Array.iter
        (fun (b : Cfg.block) ->
          match prog.code.(b.last) with
          | Vm.Instr.Br { kind = Vm.Instr.BrLoop; _ } ->
              if
                (not (Loops.in_loop loops b.bid))
                && reachable b.bid && cycles_back_to b.bid
              then
                add "BrLoop at pc %d (%s) is not inside a natural loop" b.last
                  f.name
          | _ -> ())
        cfg.blocks)
    prog.funcs;
  List.rev !issues
