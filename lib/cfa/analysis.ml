type t = { ipdom_of_pc : int array; loop_depth_of_pc : int array }

(* Blocks ending in a reachable [BrLoop] predicate are loop headers by
   construction (the compiler emits exactly one per loop construct);
   feeding them to [Loops.analyze] lets degenerate always-break loops —
   whose back edge is unreachable, so no natural loop forms — still be
   seen as (header-only) loops. *)
let brloop_headers (prog : Vm.Program.t) (cfg : Cfg.t) (dom : Dominance.t) =
  let reachable bid = bid = cfg.Cfg.entry_bid || dom.Dominance.idom.(bid) <> -1 in
  Array.to_list cfg.blocks
  |> List.filter_map (fun (b : Cfg.block) ->
         match prog.code.(b.last) with
         | Vm.Instr.Br { kind = Vm.Instr.BrLoop; _ } when reachable b.bid ->
             Some b.bid
         | _ -> None)

let loops_of (prog : Vm.Program.t) (cfg : Cfg.t) (dom : Dominance.t) =
  Loops.analyze ~extra_headers:(brloop_headers prog cfg dom) cfg dom

let analyze (prog : Vm.Program.t) =
  let n = Array.length prog.code in
  let ipdom_of_pc = Array.make n (-1) in
  let loop_depth_of_pc = Array.make n 0 in
  Array.iter
    (fun (f : Vm.Program.func_info) ->
      let cfg = Cfg.build prog f in
      let pdom = Dominance.postdom_of_cfg cfg in
      let dom = Dominance.of_cfg cfg in
      let loops = loops_of prog cfg dom in
      Array.iter
        (fun (b : Cfg.block) ->
          (* Per-pc loop depth. *)
          for pc = b.first to b.last do
            loop_depth_of_pc.(pc) <- loops.Loops.depth.(b.bid)
          done;
          match prog.code.(b.last) with
          | Vm.Instr.Br { kind = Vm.Instr.BrIf | Vm.Instr.BrLoop; _ } ->
              let ip = pdom.Dominance.idom.(b.bid) in
              let target_pc =
                if ip = -1 || b.bid = cfg.exit_bid then f.epilogue
                else cfg.blocks.(ip).first
              in
              ipdom_of_pc.(b.last) <- target_pc
          | _ -> ())
        cfg.blocks)
    prog.funcs;
  { ipdom_of_pc; loop_depth_of_pc }

let validate (prog : Vm.Program.t) (t : t) =
  let issues = ref [] in
  let add fmt = Printf.ksprintf (fun m -> issues := m :: !issues) fmt in
  Array.iteri
    (fun pc instr ->
      match instr with
      | Vm.Instr.Br { kind = Vm.Instr.BrIf; _ } | Vm.Instr.Br { kind = Vm.Instr.BrLoop; _ }
        ->
          if t.ipdom_of_pc.(pc) = -1 then
            add "predicate at pc %d has no immediate post-dominator" pc
      | _ -> ())
    prog.code;
  (* Every reachable BrLoop predicate must head a loop — natural when
     the back edge survives, degenerate (header-only) when the body
     always breaks. [loops_of] registers both, so no tolerance for
     loop-less predicates remains. *)
  Array.iter
    (fun (f : Vm.Program.func_info) ->
      let cfg = Cfg.build prog f in
      let dom = Dominance.of_cfg cfg in
      let loops = loops_of prog cfg dom in
      let reachable bid =
        bid = cfg.Cfg.entry_bid || dom.Dominance.idom.(bid) <> -1
      in
      Array.iter
        (fun (b : Cfg.block) ->
          match prog.code.(b.last) with
          | Vm.Instr.Br { kind = Vm.Instr.BrLoop; _ } ->
              if reachable b.bid && not (Loops.in_loop loops b.bid) then
                add "BrLoop at pc %d (%s) is not inside a natural loop" b.last
                  f.name
          | _ -> ())
        cfg.blocks)
    prog.funcs;
  List.rev !issues
