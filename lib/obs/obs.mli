(** Allocation-free telemetry: counters, gauges, log2 histograms,
    monotonic-clock timers, and a named-metric registry with mergeable
    snapshots.

    Instruments are safe for the profiling hot path: each update is a few
    int stores on a pre-allocated record or array — no closure capture,
    no boxing, no growth. Snapshots (and their merging/rendering) are the
    only allocating operations and run off the hot path.

    Each profiling run owns its instruments (one registry per run), so
    sharded domains never contend; {!merge} combines shard snapshots and
    is associative and commutative — the same algebra as
    [Alchemist.Profile.merge]. *)

val now_ns : unit -> int
(** Monotonic clock, nanoseconds (CLOCK_MONOTONIC via a noalloc stub). *)

module Counter : sig
  type t

  val make : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
end

module Gauge : sig
  (** A level with a high-water mark. *)

  type t

  val make : unit -> t

  val set : t -> int -> unit
  (** Sets the level and raises the high-water mark if exceeded. *)

  val add : t -> int -> unit
  val get : t -> int
  val hwm : t -> int
end

module Histogram : sig
  (** Log2-bucketed value distribution: bucket 0 holds values [<= 0],
      bucket [b >= 1] holds values in [[2^(b-1), 2^b)]. *)

  type t

  val make : unit -> t
  val observe : t -> int -> unit
  val bucket_of : int -> int
  val count : t -> int
  val sum : t -> int
  val max_value : t -> int
  val bucket : t -> int -> int
end

module Timer : sig
  (** Accumulating monotonic-clock phase timer. *)

  type t

  val make : unit -> t
  val start : t -> unit

  val stop : t -> unit
  (** Adds the elapsed span to the total; no-op if not started. *)

  val time : t -> (unit -> 'a) -> 'a
  val total_ns : t -> int
  val spans : t -> int
end

type value =
  | Count of int
  | Level of { last : int; hwm : int }
  | Dist of { buckets : int array; count : int; sum : int; max : int }
  | Span of { ns : int; spans : int }

type snapshot = (string * value) list
(** Immutable point-in-time metric values, sorted by name. *)

module Registry : sig
  (** A named collection of live instruments. Registration happens at
      setup time (not the hot path); names must be unique. *)

  type t

  val create : unit -> t

  val counter : t -> string -> Counter.t
  (** Create and register. @raise Invalid_argument on a duplicate name. *)

  val gauge : t -> string -> Gauge.t
  val histogram : t -> string -> Histogram.t
  val timer : t -> string -> Timer.t

  val register_counter : t -> string -> Counter.t -> unit
  (** Register an instrument owned by another subsystem. *)

  val register_gauge : t -> string -> Gauge.t -> unit
  val register_histogram : t -> string -> Histogram.t -> unit
  val register_timer : t -> string -> Timer.t -> unit

  val snapshot : t -> snapshot
end

val merge : snapshot -> snapshot -> snapshot
(** Union by name: counters and histogram buckets add, gauges take the
    max (of level and high-water mark), timers add. Associative and
    commutative. @raise Invalid_argument if a name is bound to different
    metric types in the two snapshots. *)

val merge_all : snapshot list -> snapshot

val filter : (string -> value -> bool) -> snapshot -> snapshot
(** Keep entries satisfying the predicate (e.g. drop [Span] timers for
    deterministic golden output). *)

val find : snapshot -> string -> value option
val find_count : snapshot -> string -> int option
val find_span_ns : snapshot -> string -> int option

val percentile_upper : value -> int -> int option
(** [percentile_upper (Dist d) pct] is an inclusive upper bound on the
    [pct]-th percentile of the distribution: the upper edge of the first
    log2 bucket whose cumulative count reaches [ceil (pct/100 * count)],
    clamped to the observed maximum — a bucket covering
    [[2^(b-1), 2^b)] must not report an upper bound above a value the
    histogram never saw (BENCH_7's [depth_p99_upper: 16383] artifact for
    a ring whose depth never exceeds 8192). [None] on an empty
    distribution or a non-[Dist] value.
    @raise Invalid_argument unless [1 <= pct <= 100]. *)

val dist_percentile_upper : snapshot -> string -> int -> int option
(** [dist_percentile_upper s name pct] applies {!percentile_upper} to the
    named metric; [None] if absent, empty, or not a histogram. *)

val render_text : snapshot -> string
(** One aligned line per metric; histograms show nonzero buckets by their
    lower bound. *)

val render_json : snapshot -> string
(** A single JSON object keyed by metric name (sorted, deterministic for
    timer-free snapshots). *)
