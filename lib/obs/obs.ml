(* Allocation-free telemetry instruments and a named-metric registry.

   The instruments are designed for the profiling hot path: every update
   is a handful of int stores on a pre-allocated record or array — no
   closures, no boxing, no amortized growth. Aggregation (snapshots,
   rendering, merging across shards) allocates, but only off the hot
   path, mirroring the sink discipline of the shadow memory. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

module Counter = struct
  type t = { mutable n : int }

  let make () = { n = 0 }
  let[@inline] incr t = t.n <- t.n + 1
  let[@inline] add t k = t.n <- t.n + k
  let get t = t.n
end

module Gauge = struct
  type t = { mutable v : int; mutable hwm : int }

  let make () = { v = 0; hwm = 0 }

  let[@inline] set t x =
    t.v <- x;
    if x > t.hwm then t.hwm <- x

  let[@inline] add t k = set t (t.v + k)
  let get t = t.v
  let hwm t = t.hwm
end

module Histogram = struct
  (* Log2 buckets: value [v] lands in bucket 0 if [v <= 0], else
     [floor(log2 v) + 1] (capped at 62) — bucket [b >= 1] covers
     [2^(b-1), 2^b). *)
  type t = {
    buckets : int array;
    mutable count : int;
    mutable sum : int;
    mutable max : int;
  }

  let nbuckets = 63

  let make () = { buckets = Array.make nbuckets 0; count = 0; sum = 0; max = 0 }

  let bucket_of v =
    if v <= 0 then 0
    else begin
      let b = ref 1 and v = ref v in
      while !v > 1 do
        Stdlib.incr b;
        v := !v lsr 1
      done;
      if !b >= nbuckets then nbuckets - 1 else !b
    end

  let[@inline] observe t v =
    (* values 0 and 1 are their own buckets and dominate the hot-path
       histograms (attribution walk depth, pool scan length) — skip the
       shift loop for them *)
    let b = if v >= 0 && v <= 1 then v else bucket_of v in
    t.buckets.(b) <- t.buckets.(b) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum + v;
    if v > t.max then t.max <- v

  let count t = t.count
  let sum t = t.sum
  let max_value t = t.max
  let bucket t i = t.buckets.(i)
end

module Timer = struct
  type t = { mutable total_ns : int; mutable started : int; mutable spans : int }

  let make () = { total_ns = 0; started = -1; spans = 0 }
  let start t = t.started <- now_ns ()

  let stop t =
    if t.started >= 0 then begin
      t.total_ns <- t.total_ns + (now_ns () - t.started);
      t.started <- -1;
      t.spans <- t.spans + 1
    end

  let time t f =
    start t;
    Fun.protect ~finally:(fun () -> stop t) f

  let total_ns t = t.total_ns
  let spans t = t.spans
end

(* --- snapshots ----------------------------------------------------------- *)

type value =
  | Count of int
  | Level of { last : int; hwm : int }
  | Dist of { buckets : int array; count : int; sum : int; max : int }
  | Span of { ns : int; spans : int }

type snapshot = (string * value) list

module Registry = struct
  type metric =
    | C of Counter.t
    | G of Gauge.t
    | H of Histogram.t
    | T of Timer.t

  type t = { mutable metrics : (string * metric) list }

  let create () = { metrics = [] }

  let register t name m =
    if List.mem_assoc name t.metrics then
      invalid_arg (Printf.sprintf "Obs.Registry: duplicate metric %S" name);
    t.metrics <- (name, m) :: t.metrics

  let register_counter t name c = register t name (C c)
  let register_gauge t name g = register t name (G g)
  let register_histogram t name h = register t name (H h)
  let register_timer t name tm = register t name (T tm)

  let counter t name =
    let c = Counter.make () in
    register_counter t name c;
    c

  let gauge t name =
    let g = Gauge.make () in
    register_gauge t name g;
    g

  let histogram t name =
    let h = Histogram.make () in
    register_histogram t name h;
    h

  let timer t name =
    let tm = Timer.make () in
    register_timer t name tm;
    tm

  let snapshot t =
    t.metrics
    |> List.map (fun (name, m) ->
           ( name,
             match m with
             | C c -> Count (Counter.get c)
             | G g -> Level { last = Gauge.get g; hwm = Gauge.hwm g }
             | H h ->
                 Dist
                   {
                     buckets = Array.copy h.Histogram.buckets;
                     count = h.Histogram.count;
                     sum = h.Histogram.sum;
                     max = h.Histogram.max;
                   }
             | T tm -> Span { ns = Timer.total_ns tm; spans = Timer.spans tm } ))
    |> List.sort (fun (a, _) (b, _) -> compare a b)
end

(* --- snapshot algebra ----------------------------------------------------- *)

let merge_value name a b =
  match (a, b) with
  | Count x, Count y -> Count (x + y)
  | Level x, Level y ->
      Level { last = max x.last y.last; hwm = max x.hwm y.hwm }
  | Dist x, Dist y ->
      let n = max (Array.length x.buckets) (Array.length y.buckets) in
      let buckets = Array.make n 0 in
      Array.iteri (fun i v -> buckets.(i) <- buckets.(i) + v) x.buckets;
      Array.iteri (fun i v -> buckets.(i) <- buckets.(i) + v) y.buckets;
      Dist
        {
          buckets;
          count = x.count + y.count;
          sum = x.sum + y.sum;
          max = max x.max y.max;
        }
  | Span x, Span y -> Span { ns = x.ns + y.ns; spans = x.spans + y.spans }
  | _ ->
      invalid_arg
        (Printf.sprintf "Obs.merge: metric %S has mismatched types" name)

(* Both inputs are name-sorted (Registry.snapshot sorts; merge preserves
   order), so this is a linear sorted-list union. *)
let rec merge (a : snapshot) (b : snapshot) =
  match (a, b) with
  | [], s | s, [] -> s
  | (na, va) :: ra, (nb, vb) :: rb ->
      if na < nb then (na, va) :: merge ra b
      else if nb < na then (nb, vb) :: merge a rb
      else (na, merge_value na va vb) :: merge ra rb

let merge_all = function [] -> [] | s :: ss -> List.fold_left merge s ss
let filter f (s : snapshot) = List.filter (fun (n, v) -> f n v) s
let find (s : snapshot) name = List.assoc_opt name s

let find_count s name =
  match find s name with Some (Count n) -> Some n | _ -> None

let find_span_ns s name =
  match find s name with Some (Span { ns; _ }) -> Some ns | _ -> None

(* Bucket b >= 1 covers [2^(b-1), 2^b), so its inclusive upper edge is
   2^b - 1 — but the histogram also tracks the exact observed max, and
   no percentile can exceed it. Clamping keeps the reported bound inside
   the observed range (a ring whose depth_max is 8192 must not report
   p99 <= 16383). *)
let percentile_upper v pct =
  if pct < 1 || pct > 100 then
    invalid_arg (Printf.sprintf "Obs.percentile_upper: pct %d not in 1..100" pct);
  match v with
  | Dist { buckets; count; max; _ } when count > 0 ->
      let target = ((pct * count) + 99) / 100 in
      let cum = ref 0 and result = ref None in
      (try
         Array.iteri
           (fun b n ->
             cum := !cum + n;
             if !cum >= target then begin
               result := Some (if b = 0 then 0 else min ((1 lsl b) - 1) max);
               raise Exit
             end)
           buckets
       with Exit -> ());
      !result
  | _ -> None

let dist_percentile_upper s name pct =
  match find s name with Some v -> percentile_upper v pct | None -> None

(* --- rendering ------------------------------------------------------------ *)

let dist_buckets_nonzero buckets =
  let acc = ref [] in
  Array.iteri (fun i n -> if n > 0 then acc := (i, n) :: !acc) buckets;
  List.rev !acc

(* Bucket b >= 1 covers [2^(b-1), 2^b); render by its lower bound. *)
let bucket_lo = function 0 -> 0 | b -> 1 lsl (b - 1)

let render_text (s : snapshot) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      (match v with
      | Count n -> Buffer.add_string buf (Printf.sprintf "%-32s %12d" name n)
      | Level { last; hwm } ->
          Buffer.add_string buf
            (Printf.sprintf "%-32s %12d  (hwm %d)" name last hwm)
      | Dist { buckets; count; sum; max } ->
          Buffer.add_string buf
            (Printf.sprintf "%-32s %12d  sum=%d max=%d" name count sum max);
          if count > 0 then begin
            Buffer.add_string buf "  |";
            List.iter
              (fun (b, n) ->
                Buffer.add_string buf
                  (Printf.sprintf " %d:%d" (bucket_lo b) n))
              (dist_buckets_nonzero buckets);
            Buffer.add_string buf " |"
          end
      | Span { ns; spans } ->
          Buffer.add_string buf
            (Printf.sprintf "%-32s %12.3f ms  (%d span%s)" name
               (float_of_int ns /. 1e6)
               spans
               (if spans = 1 then "" else "s")));
      Buffer.add_char buf '\n')
    s;
  Buffer.contents buf

let render_json (s : snapshot) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf (Printf.sprintf "\n  %S: " name);
      match v with
      | Count n -> Buffer.add_string buf (string_of_int n)
      | Level { last; hwm } ->
          Buffer.add_string buf
            (Printf.sprintf "{\"last\": %d, \"hwm\": %d}" last hwm)
      | Dist { buckets; count; sum; max } ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"count\": %d, \"sum\": %d, \"max\": %d, \"buckets\": [%s]}"
               count sum max
               (String.concat ", "
                  (List.map
                     (fun (b, n) -> Printf.sprintf "[%d, %d]" (bucket_lo b) n)
                     (dist_buckets_nonzero buckets))))
      | Span { ns; spans } ->
          Buffer.add_string buf
            (Printf.sprintf "{\"ns\": %d, \"spans\": %d}" ns spans))
    s;
  Buffer.add_string buf "\n}";
  Buffer.contents buf
