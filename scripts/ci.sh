#!/bin/sh
# CI entry point: build everything (including tests and benches) and run
# the full test suite. Fails on any compiler error or test failure.
set -eu
cd "$(dirname "$0")/.."

dune build @check
dune build
dune runtest

# Smoke-test the telemetry surface end to end: a real profiled run must
# emit both renderings without tripping any instrument.
dune exec --no-build -- alchemist profile workload:aes:64 --telemetry > /dev/null
dune exec --no-build -- alchemist profile workload:aes:64 --telemetry=json > /dev/null
