#!/bin/sh
# CI entry point: build everything (including tests and benches) and run
# the full test suite. Fails on any compiler error or test failure.
set -eu
cd "$(dirname "$0")/.."

dune build @check
dune build
dune runtest

# Smoke-test the telemetry surface end to end: a real profiled run must
# emit both renderings without tripping any instrument.
dune exec --no-build -- alchemist profile workload:aes:64 --telemetry > /dev/null
dune exec --no-build -- alchemist profile workload:aes:64 --telemetry=json > /dev/null

# Smoke-test the reference interpreter: the switch engine must stay
# runnable from the CLI even though threaded is the default.
dune exec --no-build -- alchemist run workload:aes:64 --engine=switch > /dev/null

# Engine differential: both engines must produce byte-identical saved
# profiles for the same workload (the full differential matrix lives in
# test/test_engines.ml; this guards the CLI wiring end to end).
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
dune exec --no-build -- alchemist profile workload:gzip-1.3.5:2 \
  --engine=threaded --save "$tmpdir/threaded.prof" > /dev/null
dune exec --no-build -- alchemist profile workload:gzip-1.3.5:2 \
  --engine=switch --save "$tmpdir/switch.prof" > /dev/null
cmp "$tmpdir/threaded.prof" "$tmpdir/switch.prof"
echo "engine differential: profiles byte-identical"

# Static checker over every registry workload: CFA validation
# (Cfa.Analysis.validate — any discrepancy fails), prune-on/prune-off
# byte-identity, profile round-trip, and the dynamic-profile sanitizer.
dune exec --no-build -- alchemist check --all --test-scale

# Pruning differential through the CLI: instrumentation pruning must not
# change a single byte of the saved profile.
dune exec --no-build -- alchemist profile workload:gzip-1.3.5:2 \
  --save "$tmpdir/prune-on.prof" > /dev/null
dune exec --no-build -- alchemist profile workload:gzip-1.3.5:2 \
  --static-prune=false --save "$tmpdir/prune-off.prof" > /dev/null
cmp "$tmpdir/prune-on.prof" "$tmpdir/prune-off.prof"
echo "pruning differential: profiles byte-identical"
