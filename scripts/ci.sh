#!/bin/sh
# CI entry point: build everything (including tests and benches) and run
# the full test suite. Fails on any compiler error or test failure.
set -eu
cd "$(dirname "$0")/.."

dune build @check
dune build
dune runtest

# Smoke-test the telemetry surface end to end: a real profiled run must
# emit both renderings without tripping any instrument.
dune exec --no-build -- alchemist profile workload:aes:64 --telemetry > /dev/null
dune exec --no-build -- alchemist profile workload:aes:64 --telemetry=json > /dev/null

# Smoke-test the reference interpreter: the switch engine must stay
# runnable from the CLI even though threaded is the default.
dune exec --no-build -- alchemist run workload:aes:64 --engine=switch > /dev/null

# Engine differential: both engines must produce byte-identical saved
# profiles for the same workload (the full differential matrix lives in
# test/test_engines.ml; this guards the CLI wiring end to end).
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
dune exec --no-build -- alchemist profile workload:gzip-1.3.5:2 \
  --engine=threaded --save "$tmpdir/threaded.prof" > /dev/null
dune exec --no-build -- alchemist profile workload:gzip-1.3.5:2 \
  --engine=switch --save "$tmpdir/switch.prof" > /dev/null
cmp "$tmpdir/threaded.prof" "$tmpdir/switch.prof"
echo "engine differential: profiles byte-identical"

# Register-IR differential: the register backend must match the stack
# engines byte for byte through the CLI too, with and without the
# graph-coloring allocator (regalloc only reshuffles slots — any
# observable difference means a canonicalization move went missing).
dune exec --no-build -- alchemist profile workload:gzip-1.3.5:2 \
  --engine=register --save "$tmpdir/register.prof" > /dev/null
if ! cmp "$tmpdir/threaded.prof" "$tmpdir/register.prof"; then
  echo "register engine diverged from threaded on gzip" >&2
  exit 1
fi
dune exec --no-build -- alchemist profile workload:gzip-1.3.5:2 \
  --engine=register --regalloc=false \
  --save "$tmpdir/register-noalloc.prof" > /dev/null
if ! cmp "$tmpdir/register.prof" "$tmpdir/register-noalloc.prof"; then
  echo "regalloc changed the register engine's profile" >&2
  exit 1
fi
echo "register differential: profiles byte-identical"

# Ring differential: batched hook delivery through the event ring must
# not change a single byte of the profile versus direct delivery. The
# ring reorders *when* hooks run (drain-in-bulk, clock restored from
# event stamps, join-free segments elided), never *what* they observe —
# this guards that equivalence end to end through the CLI.
dune exec --no-build -- alchemist profile workload:gzip-1.3.5:2 \
  --engine=register --ring=false \
  --save "$tmpdir/register-noring.prof" > /dev/null
if ! cmp "$tmpdir/register.prof" "$tmpdir/register-noring.prof"; then
  echo "event ring changed the register engine's profile" >&2
  exit 1
fi
echo "ring differential: profiles byte-identical"

# Regalloc sanity: on gzip the coloring must fit the 16-slot window —
# a nonzero spill count here means the allocator regressed (the
# workloads' functions never keep more than 16 values live).
spills=$(dune exec --no-build -- alchemist profile workload:gzip-1.3.5:2 \
  --engine=register --telemetry \
  | awk '$1 == "ir.spills" { print $2 }')
[ -n "$spills" ] || { echo "ir.spills gauge missing from telemetry" >&2; exit 1; }
[ "$spills" -eq 0 ] || { echo "regalloc spilled on gzip: $spills" >&2; exit 1; }
echo "regalloc sanity: 0 spills on gzip"

# Static checker over every registry workload: CFA validation
# (Cfa.Analysis.validate — any discrepancy fails), prune-on/prune-off
# byte-identity, profile round-trip, and the dynamic-profile sanitizer —
# which cross-validates every observed min Tdep against the distance
# engine's proven lower bounds. At least one workload (par2's gfexp
# table) must actually carry a validated bound, or the distance layer
# silently stopped proving anything.
dune exec --no-build -- alchemist check --all --test-scale > "$tmpdir/check.out"
cat "$tmpdir/check.out"
grep -q "validated against static distance bounds" "$tmpdir/check.out"
echo "distance validation: proven bounds checked against observed Tdep"

# Seeded failure: corrupt a saved profile's observed min Tdep below its
# stored static lower bound; the checker must refuse it (this proves the
# distance cross-check can actually fire, not just that clean profiles
# pass).
dune exec --no-build -- alchemist profile workload:par2:24 \
  --save "$tmpdir/par2.prof" > /dev/null
grep -q "^distbound " "$tmpdir/par2.prof"
awk '$1 == "distbound" { bounded[$2 " " $3] = 1 }
     $1 == "edge" && (($3 " " $4) in bounded) { $6 = 1 }
     { print }' "$tmpdir/par2.prof" > "$tmpdir/par2-bad.prof"
if dune exec --no-build -- alchemist check workload:par2:24 \
     --profile "$tmpdir/par2-bad.prof" > "$tmpdir/seeded.out" 2>&1; then
  echo "seeded corruption was NOT caught" >&2
  exit 1
fi
grep -q "static lower bound" "$tmpdir/seeded.out"
echo "seeded corruption: distance checker fired as required"

# Transform-legality gate. Three properties, end to end through the CLI:
#
# 1. Every registry workload persists version-4 legality verdicts and the
#    sanitizer's cross-validation passes — asserted on the machine-readable
#    `check --json` document, not on prose.
dune exec --no-build -- alchemist check --all --test-scale --json \
  > "$tmpdir/check.json"
grep -q '"failed_workloads": 0' "$tmpdir/check.json"
if grep -q '"validated_legality_edges": 0[,}]' "$tmpdir/check.json"; then
  echo "a workload carries no legality verdicts" >&2
  exit 1
fi
echo "legality gate: every workload persists validated v4 verdicts"

# 2. Seeded failure: retag one of gzip's serializing legality lines as
#    privatizable; the sanitizer must refuse the profile (this proves the
#    legality cross-check can actually fire, not just that clean profiles
#    pass). The threaded.prof saved above is gzip's version-4 profile.
grep -q "^legality .* serial$" "$tmpdir/threaded.prof"
awk '!seeded && $1 == "legality" && $5 == "serial" { $5 = "priv"; seeded = 1 }
     { print }' "$tmpdir/threaded.prof" > "$tmpdir/gzip-bad.prof"
if dune exec --no-build -- alchemist check workload:gzip-1.3.5:2 \
     --profile "$tmpdir/gzip-bad.prof" > "$tmpdir/legality-seeded.out" 2>&1
then
  echo "seeded legality corruption was NOT caught" >&2
  exit 1
fi
grep -q "disagrees with analysis" "$tmpdir/legality-seeded.out"
echo "seeded corruption: legality checker fired as required"

# 3. Backward compatibility of the writer: a profile with no legality
#    block must serialize as byte-exact version-3 output — i.e. the
#    version-4 file differs from the version-3 file by exactly its
#    legality lines and the header digit. par2.prof saved above is the
#    version-4 profile with both distbound and legality blocks.
dune exec --no-build -- alchemist profile workload:par2:24 \
  --legality=false --race=false --save "$tmpdir/par2-v3.prof" > /dev/null
head -1 "$tmpdir/par2-v3.prof" | grep -q "^alchemist-profile 3$"
awk '$1 == "alchemist-profile" { $2 = 3 }
     $1 == "legality" || $1 == "race" { next } { print }' \
  "$tmpdir/par2.prof" > "$tmpdir/par2-stripped.prof"
cmp "$tmpdir/par2-stripped.prof" "$tmpdir/par2-v3.prof"
echo "legality-free writer: byte-exact version-3 output"

# Static race gate. Three properties, end to end through the CLI:
#
# 1. `verify --json` over every registry workload must produce a
#    structurally sound document, and at least one racy construct must
#    exist across the registry — a detector that finds no interference
#    anywhere has silently stopped looking. Every workload must also
#    persist version-5 race statuses the sanitizer cross-validates
#    (asserted on the `check --json` document produced above).
dune exec --no-build -- alchemist verify --all --test-scale --json \
  > "$tmpdir/verify.json"
grep -q '"workloads"' "$tmpdir/verify.json"
grep -q '"race_free"' "$tmpdir/verify.json"
grep -q '"racy_constructs"' "$tmpdir/verify.json"
if grep -q '"total_racy": 0[,}]' "$tmpdir/verify.json"; then
  echo "the race detector found no racy construct in any workload" >&2
  exit 1
fi
if grep -q '"validated_race_constructs": 0[,}]' "$tmpdir/check.json"; then
  echo "a workload carries no validated race statuses" >&2
  exit 1
fi
echo "race gate: verify --json sound, every workload persists v5 statuses"

# 2. Seeded failure: flip one of gzip's racy statuses to race-free in
#    the saved profile; the sanitizer must refuse it — a forged
#    race-free tag is exactly the corruption that would green-light an
#    unsafe spawn. The threaded.prof saved above is gzip's version-5
#    profile.
grep -q "^race .* racy$" "$tmpdir/threaded.prof"
awk '!seeded && $1 == "race" && $3 == "racy" { $3 = "race-free"; seeded = 1 }
     { print }' "$tmpdir/threaded.prof" > "$tmpdir/gzip-race-bad.prof"
if dune exec --no-build -- alchemist check workload:gzip-1.3.5:2 \
     --profile "$tmpdir/gzip-race-bad.prof" > "$tmpdir/race-seeded.out" 2>&1
then
  echo "seeded race corruption was NOT caught" >&2
  exit 1
fi
grep -q "disagrees with analysis" "$tmpdir/race-seeded.out"
echo "seeded corruption: race checker fired as required"

# 3. Backward compatibility of the writer: a profile with no race block
#    must serialize as byte-exact version-4 output — the version-5 file
#    differs from it by exactly its race lines and the header digit.
dune exec --no-build -- alchemist profile workload:par2:24 \
  --race=false --save "$tmpdir/par2-v4.prof" > /dev/null
head -1 "$tmpdir/par2-v4.prof" | grep -q "^alchemist-profile 4$"
awk '$1 == "alchemist-profile" { $2 = 4 } $1 == "race" { next } { print }' \
  "$tmpdir/par2.prof" > "$tmpdir/par2-race-stripped.prof"
cmp "$tmpdir/par2-race-stripped.prof" "$tmpdir/par2-v4.prof"
echo "race-free writer: byte-exact version-4 output"

# Pruning differential through the CLI: instrumentation pruning must not
# change a single byte of the saved profile.
dune exec --no-build -- alchemist profile workload:gzip-1.3.5:2 \
  --save "$tmpdir/prune-on.prof" > /dev/null
dune exec --no-build -- alchemist profile workload:gzip-1.3.5:2 \
  --static-prune=false --save "$tmpdir/prune-off.prof" > /dev/null
cmp "$tmpdir/prune-on.prof" "$tmpdir/prune-off.prof"
echo "pruning differential: profiles byte-identical"

# Serve smoke test: a 10-request stdin batch through the registry
# service must save exactly the same bytes as the one-shot profile
# command for every workload — the scheduler, cache, and facts-reuse
# layers must be invisible in the output.
cat > "$tmpdir/serve.req" <<EOF
workload:aes:128 save=$tmpdir/serve-aes.prof
workload:gzip-1.3.5:2 save=$tmpdir/serve-gzip.prof
workload:par2:24 save=$tmpdir/serve-par2.prof
workload:stencil:512 save=$tmpdir/serve-stencil.prof
workload:ogg:256 save=$tmpdir/serve-ogg.prof
workload:130.li:30 save=$tmpdir/serve-li.prof
workload:197.parser:240 save=$tmpdir/serve-parser.prof
workload:bzip2:1500 save=$tmpdir/serve-bzip2.prof
workload:delaunay:2000 save=$tmpdir/serve-delaunay.prof
workload:aes:128 save=$tmpdir/serve-aes-repeat.prof
EOF
dune exec --no-build -- alchemist serve < "$tmpdir/serve.req" \
  > "$tmpdir/serve.out"
[ "$(grep -c '^ok ' "$tmpdir/serve.out")" -eq 10 ] || {
  echo "serve batch did not answer all 10 requests ok" >&2
  cat "$tmpdir/serve.out" >&2
  exit 1
}
for spec in aes:128 gzip-1.3.5:2 par2:24 stencil:512 ogg:256 \
            130.li:30 197.parser:240 bzip2:1500 delaunay:2000; do
  name=$(echo "$spec" | sed 's/:.*//; s/^130\.li$/li/; s/^197\.parser$/parser/; s/-1\.3\.5$//')
  dune exec --no-build -- alchemist profile "workload:$spec" \
    --save "$tmpdir/direct-$name.prof" > /dev/null
  cmp "$tmpdir/serve-$name.prof" "$tmpdir/direct-$name.prof"
done
cmp "$tmpdir/serve-aes.prof" "$tmpdir/serve-aes-repeat.prof"
echo "serve smoke: 10-request batch byte-identical to one-shot profiles"

# Cold/warm determinism: a second serve run over the same requests and
# a shared cache directory must answer purely from the cache and still
# save byte-identical profiles.
mkdir "$tmpdir/cache"
sed "s|$tmpdir/serve-|$tmpdir/cold-|" "$tmpdir/serve.req" > "$tmpdir/cold.req"
sed "s|$tmpdir/serve-|$tmpdir/warm-|" "$tmpdir/serve.req" > "$tmpdir/warm.req"
dune exec --no-build -- alchemist serve --cache-dir "$tmpdir/cache" \
  < "$tmpdir/cold.req" > /dev/null
dune exec --no-build -- alchemist serve --cache-dir "$tmpdir/cache" \
  < "$tmpdir/warm.req" > "$tmpdir/warm.out"
if grep -q ' miss ' "$tmpdir/warm.out"; then
  echo "warm serve run recomputed instead of hitting the cache" >&2
  cat "$tmpdir/warm.out" >&2
  exit 1
fi
for f in "$tmpdir"/cold-*.prof; do
  cmp "$f" "$(echo "$f" | sed 's|/cold-|/warm-|')"
done
echo "serve determinism: warm run all cache hits, profiles byte-identical"
