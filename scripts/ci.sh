#!/bin/sh
# CI entry point: build everything (including tests and benches) and run
# the full test suite. Fails on any compiler error or test failure.
set -eu
cd "$(dirname "$0")/.."

dune build @check
dune build
dune runtest
